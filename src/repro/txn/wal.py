"""Write-ahead log: append-only logical operation log.

The engine follows a *logical redo* discipline: every operation of a
transaction is logged as a self-contained, deterministic description
(operation name, atom ids, values, timestamps), and the log is forced at
commit.  Recovery replays the committed operations newer than the last
checkpoint against the checkpointed database image — see
:mod:`repro.txn.recovery`.

Record wire format::

    [lsn:8][type:1][txn_id:8][payload_len:4][crc32:4][payload: JSON bytes]

The CRC covers the header fields and the payload, so a torn write at the
tail (the only corruption a crash can produce on an append-only file) is
detected and the log is cut there.  Payloads are JSON for debuggability;
the volume overhead is measured, not hidden (experiment R-F5 reports log
bytes per update).
"""

from __future__ import annotations

import enum
import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional

from repro.errors import WALError
from repro.obs import MetricsRegistry

_HEADER = struct.Struct("<BQII")  # type, txn_id, payload_len, crc
_LSN = struct.Struct("<Q")


class LogRecordType(enum.Enum):
    BEGIN = 1
    OPERATION = 2
    COMMIT = 3
    ABORT = 4
    CHECKPOINT = 5


@dataclass(frozen=True, slots=True)
class LogRecord:
    """One decoded log record."""

    lsn: int
    type: LogRecordType
    txn_id: int
    payload: Dict[str, Any]


class WriteAheadLog:
    """Append-only log file with LSN addressing and CRC validation.

    LSNs are 1-based sequence numbers (not byte offsets), monotonically
    increasing across the log's lifetime.
    """

    def __init__(self, path: str | os.PathLike[str],
                 sync_on_commit: bool = True,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self._path = os.fspath(path)
        self._sync_on_commit = sync_on_commit
        self._lock = threading.Lock()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._c_appends = self.metrics.counter("wal.appends")
        self._c_bytes = self.metrics.counter("wal.bytes")
        self._c_fsyncs = self.metrics.counter("wal.fsyncs")
        self._file = open(self._path, "ab+")
        self._next_lsn = self._recover_next_lsn()

    def _recover_next_lsn(self) -> int:
        last = 0
        for record in self.read_all():
            last = record.lsn
        return last + 1

    @property
    def path(self) -> str:
        return self._path

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    def size_bytes(self) -> int:
        self._file.flush()
        return os.path.getsize(self._path)

    # -- writing ------------------------------------------------------------

    def append(self, record_type: LogRecordType, txn_id: int,
               payload: Optional[Dict[str, Any]] = None) -> int:
        """Append one record; returns its LSN.  Does not force."""
        body = json.dumps(payload or {}, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        with self._lock:
            lsn = self._next_lsn
            self._next_lsn += 1
            header = _HEADER.pack(record_type.value, txn_id, len(body), 0)
            crc = zlib.crc32(_LSN.pack(lsn) + header + body)
            header = _HEADER.pack(record_type.value, txn_id, len(body), crc)
            record = _LSN.pack(lsn) + header + body
            self._file.write(record)
            self._c_appends.inc()
            self._c_bytes.inc(len(record))
            return lsn

    def flush(self, sync: Optional[bool] = None) -> None:
        """Flush buffered records; fsync when forcing a commit."""
        with self._lock:
            self._file.flush()
            if sync if sync is not None else self._sync_on_commit:
                os.fsync(self._file.fileno())
                self._c_fsyncs.inc()

    # -- reading --------------------------------------------------------------

    def read_all(self, after_lsn: int = 0) -> Iterator[LogRecord]:
        """Yield valid records with ``lsn > after_lsn``; stop at a torn tail.

        A record that fails its CRC or is truncated ends the iteration —
        by the write-ahead discipline everything after it is garbage from
        an interrupted append.
        """
        with self._lock:
            self._file.flush()
        with open(self._path, "rb") as handle:
            while True:
                prefix = handle.read(_LSN.size + _HEADER.size)
                if len(prefix) < _LSN.size + _HEADER.size:
                    return
                (lsn,) = _LSN.unpack_from(prefix, 0)
                type_value, txn_id, length, crc = _HEADER.unpack_from(
                    prefix, _LSN.size)
                body = handle.read(length)
                if len(body) < length:
                    return  # torn tail
                check_header = _HEADER.pack(type_value, txn_id, length, 0)
                if zlib.crc32(_LSN.pack(lsn) + check_header + body) != crc:
                    return  # torn or corrupt tail
                if lsn <= after_lsn:
                    continue
                try:
                    record_type = LogRecordType(type_value)
                    payload = json.loads(body)
                except (ValueError, json.JSONDecodeError) as exc:
                    raise WALError(
                        f"undecodable log record at lsn {lsn}") from exc
                yield LogRecord(lsn, record_type, txn_id, payload)

    # -- maintenance ------------------------------------------------------------

    def truncate(self) -> None:
        """Discard the log (after a checkpoint made it redundant)."""
        with self._lock:
            self._file.seek(0)
            self._file.truncate()
            self._file.flush()
            os.fsync(self._file.fileno())
            self._c_fsyncs.inc()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

"""Write-ahead log: append-only logical operation log with group commit.

The engine follows a *logical redo* discipline: every operation of a
transaction is logged as a self-contained, deterministic description
(operation name, atom ids, values, timestamps), and the log is forced at
commit.  Recovery replays the committed operations newer than the last
checkpoint against the checkpointed database image — see
:mod:`repro.txn.recovery`.

Commit forcing uses **group commit**: a committing thread calls
:meth:`WriteAheadLog.sync_to` with the LSN of its COMMIT record; the
first such thread becomes the *leader*, flushes and ``fsync``\\ s the
file once, and every thread whose LSN that single fsync covered returns
without issuing its own.  Under N concurrent committers the fsync cost
is amortized across the batch (``wal.group_commits`` counts fsync
rounds, ``wal.commit_batch_size`` records how many commits each round
made durable, and ``wal.fsyncs`` therefore stays well below
``txn.commits``).

When the log is opened with ``sync_on_commit=False`` (the facade's
``durability="none"``), :meth:`sync_to` is a no-op: records may sit in
the process's user-space buffer, and even a plain process kill can lose
acknowledged commits.  That mode exists for benchmarks and bulk loads
only.

Record wire format::

    [lsn:8][type:1][txn_id:8][payload_len:4][crc32:4][payload: JSON bytes]

The CRC covers the header fields and the payload, so a torn write at the
tail (the only corruption a crash can produce on an append-only file) is
detected and the log is cut there.  Payloads are JSON for debuggability;
the volume overhead is measured, not hidden (experiment R-F5 reports log
bytes per update).
"""

from __future__ import annotations

import enum
import json
import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import WALError
from repro.obs import MetricsRegistry

_HEADER = struct.Struct("<BQII")  # type, txn_id, payload_len, crc
_LSN = struct.Struct("<Q")


class LogRecordType(enum.Enum):
    BEGIN = 1
    OPERATION = 2
    COMMIT = 3
    ABORT = 4
    CHECKPOINT = 5


@dataclass(frozen=True, slots=True)
class LogRecord:
    """One decoded log record."""

    lsn: int
    type: LogRecordType
    txn_id: int
    payload: Dict[str, Any]


class WriteAheadLog:
    """Append-only log file with LSN addressing and CRC validation.

    LSNs are 1-based sequence numbers (not byte offsets), monotonically
    increasing across the log's lifetime.
    """

    def __init__(self, path: str | os.PathLike[str],
                 sync_on_commit: bool = True,
                 metrics: Optional[MetricsRegistry] = None,
                 group_commit: bool = True,
                 group_window: float = 0.003) -> None:
        self._path = os.fspath(path)
        self._sync_on_commit = sync_on_commit
        self._group_commit = group_commit
        self._group_window = group_window
        self._lock = threading.Lock()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._c_appends = self.metrics.counter("wal.appends")
        self._c_bytes = self.metrics.counter("wal.bytes")
        self._c_fsyncs = self.metrics.counter("wal.fsyncs")
        self._c_group_commits = self.metrics.counter("wal.group_commits")
        self._h_batch_size = self.metrics.histogram("wal.commit_batch_size")
        # Group-commit state: guarded by _commit_cv's lock, never by _lock.
        self._commit_cv = threading.Condition(threading.Lock())
        self._durable_lsn = 0
        self._sync_leader_active = False
        self._pending_syncs: List[int] = []
        # True when the last group showed concurrent commit load; gates
        # the leader's straggler window so solo committers never wait.
        self._group_had_company = False
        self._file = open(self._path, "ab+")
        self._next_lsn = self._recover_next_lsn()

    def _recover_next_lsn(self) -> int:
        last = 0
        for record in self.read_all():
            last = record.lsn
        return last + 1

    @property
    def path(self) -> str:
        return self._path

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    def size_bytes(self) -> int:
        self._file.flush()
        return os.path.getsize(self._path)

    # -- writing ------------------------------------------------------------

    def append(self, record_type: LogRecordType, txn_id: int,
               payload: Optional[Dict[str, Any]] = None) -> int:
        """Append one record; returns its LSN.  Does not force."""
        body = json.dumps(payload or {}, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        with self._lock:
            lsn = self._next_lsn
            self._next_lsn += 1
            header = _HEADER.pack(record_type.value, txn_id, len(body), 0)
            crc = zlib.crc32(_LSN.pack(lsn) + header + body)
            header = _HEADER.pack(record_type.value, txn_id, len(body), crc)
            record = _LSN.pack(lsn) + header + body
            self._file.write(record)
            self._c_appends.inc()
            self._c_bytes.inc(len(record))
            return lsn

    def flush(self, sync: Optional[bool] = None) -> None:
        """Flush buffered records to the OS; optionally force to disk.

        ``sync`` overrides the log's configured ``sync_on_commit``
        default: ``flush(sync=True)`` always fsyncs, ``flush(sync=False)``
        never does, and ``flush()`` follows the configuration.
        """
        force = self._sync_on_commit if sync is None else sync
        with self._lock:
            self._file.flush()
            if force:
                os.fsync(self._file.fileno())
                self._c_fsyncs.inc()

    @property
    def durable_lsn(self) -> int:
        """Highest LSN known to have reached stable storage via
        :meth:`sync_to` (0 before the first group commit)."""
        with self._commit_cv:
            return self._durable_lsn

    def sync_to(self, lsn: int) -> None:
        """Make every record up to *lsn* durable (the commit force point).

        With ``sync_on_commit=False`` this is a no-op — the facade's
        ``durability="none"`` contract is that acknowledged commits may
        be lost.  Otherwise the calling thread either joins an
        in-flight group commit (waiting until a leader's fsync covers
        its LSN) or becomes the leader itself and fsyncs once for every
        queued committer.  With ``group_commit=False`` each caller
        fsyncs individually (the per-commit-fsync baseline benchmarks
        compare against).
        """
        if not self._sync_on_commit:
            return
        if not self._group_commit:
            self.flush(sync=True)
            with self._commit_cv:
                self._durable_lsn = max(self._durable_lsn, lsn)
            return
        with self._commit_cv:
            if lsn <= self._durable_lsn:
                return
            self._pending_syncs.append(lsn)
            while True:
                if lsn <= self._durable_lsn:
                    return
                if not self._sync_leader_active:
                    self._sync_leader_active = True
                    break
                self._commit_cv.wait()
        # Leader path: one flush+fsync covers every record appended so
        # far, including commits that queued while we were elected.  The
        # fsync deliberately runs *outside* the append lock: the flush
        # fixed which bytes the fsync makes durable, and keeping appends
        # unblocked during the device flush is what lets the next batch
        # form while this one syncs.
        target = -1
        try:
            # Straggler window (PostgreSQL's commit_delay idea): when the
            # previous round had company, concurrent committers are mid
            # flight right now — a short wait lets them append their
            # COMMIT records and ride this fsync instead of paying their
            # own.  Solo committers skip it entirely.
            if self._group_window > 0:
                with self._commit_cv:
                    company = (self._group_had_company
                               or len(self._pending_syncs) > 1)
                if company:
                    time.sleep(self._group_window)
            with self._lock:
                target = self._next_lsn - 1
                self._file.flush()
                fd = self._file.fileno()
            os.fsync(fd)
            self._c_fsyncs.inc()
        finally:
            with self._commit_cv:
                if target >= 0:
                    served = [p for p in self._pending_syncs if p <= target]
                    self._pending_syncs = [p for p in self._pending_syncs
                                           if p > target]
                    self._durable_lsn = max(self._durable_lsn, target)
                    self._c_group_commits.inc()
                    self._h_batch_size.observe(len(served))
                    self._group_had_company = (len(served) > 1
                                               or bool(self._pending_syncs))
                self._sync_leader_active = False
                self._commit_cv.notify_all()

    # -- reading --------------------------------------------------------------

    def read_all(self, after_lsn: int = 0) -> Iterator[LogRecord]:
        """Yield valid records with ``lsn > after_lsn``; stop at a torn tail.

        A record that fails its CRC or is truncated ends the iteration —
        by the write-ahead discipline everything after it is garbage from
        an interrupted append.
        """
        with self._lock:
            self._file.flush()
        with open(self._path, "rb") as handle:
            while True:
                prefix = handle.read(_LSN.size + _HEADER.size)
                if len(prefix) < _LSN.size + _HEADER.size:
                    return
                (lsn,) = _LSN.unpack_from(prefix, 0)
                type_value, txn_id, length, crc = _HEADER.unpack_from(
                    prefix, _LSN.size)
                body = handle.read(length)
                if len(body) < length:
                    return  # torn tail
                check_header = _HEADER.pack(type_value, txn_id, length, 0)
                if zlib.crc32(_LSN.pack(lsn) + check_header + body) != crc:
                    return  # torn or corrupt tail
                if lsn <= after_lsn:
                    continue
                try:
                    record_type = LogRecordType(type_value)
                    payload = json.loads(body)
                except (ValueError, json.JSONDecodeError) as exc:
                    raise WALError(
                        f"undecodable log record at lsn {lsn}") from exc
                yield LogRecord(lsn, record_type, txn_id, payload)

    # -- maintenance ------------------------------------------------------------

    def truncate(self) -> None:
        """Discard the log (after a checkpoint made it redundant)."""
        with self._lock:
            self._file.seek(0)
            self._file.truncate()
            self._file.flush()
            os.fsync(self._file.fileno())
            self._c_fsyncs.inc()
            truncated_at = self._next_lsn - 1
        with self._commit_cv:
            # An empty log is trivially durable up to its last LSN.
            self._durable_lsn = max(self._durable_lsn, truncated_at)

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

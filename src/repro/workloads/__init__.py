"""Synthetic workloads: deterministic CAD/BOM-style data generation.

The MAD model's motivating domain is engineering design data: assemblies
(parts) composed of components, sourced from suppliers, described by
documents, all evolving over time.  The generator emits an *abstract
operation list* that adapters replay against any implementation — the
engine, the reference oracle, or the baselines — so every system under
comparison sees the identical logical history.
"""

from repro.workloads.generator import (
    Op,
    WorkloadSpec,
    apply_to_database,
    apply_to_reference,
    apply_to_snapshot,
    apply_to_tuple_timestamp,
    cad_schema,
    generate_bom,
)
from repro.workloads.scenarios import (
    buffer_sweep_spec,
    fanout_spec,
    history_depth_spec,
    small_spec,
)

__all__ = [
    "Op",
    "WorkloadSpec",
    "apply_to_database",
    "apply_to_reference",
    "apply_to_snapshot",
    "apply_to_tuple_timestamp",
    "cad_schema",
    "generate_bom",
    "buffer_sweep_spec",
    "fanout_spec",
    "history_depth_spec",
    "small_spec",
]

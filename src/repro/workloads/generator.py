"""BOM workload generation and replay adapters.

:func:`generate_bom` produces a deterministic list of abstract
operations from a :class:`WorkloadSpec`:

* phase 1 (time 0): create suppliers, parts, components, and documents,
  and wire the link structure (each part contains ``fanout`` components;
  components are supplied; documents describe parts);
* phase 2 (times 1..): version churn — attribute updates spread over the
  atoms, one chronon per batch, until every atom has about
  ``versions_per_atom`` versions.

Operations reference atoms by *handle* (dense integers); adapters map
handles to the concrete atom ids each target assigns.  Replaying the
same operation list into the engine, the oracle, and the baselines is
what makes cross-system comparisons and differential tests meaningful.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.core.database import TemporalDatabase
from repro.core.datatypes import DataType
from repro.core.schema import AtomType, Attribute, Cardinality, LinkType, Schema

#: Abstract operation: (kind, *args) with atom handles, not ids.
Op = Tuple[Any, ...]


def cad_schema() -> Schema:
    """The evaluation schema: a small engineering-design database."""
    schema = Schema("cad")
    schema.add_atom_type(AtomType("Part", [
        Attribute("name", DataType.STRING, required=True),
        Attribute("cost", DataType.FLOAT),
        Attribute("released", DataType.BOOL),
    ]))
    schema.add_atom_type(AtomType("Component", [
        Attribute("cname", DataType.STRING, required=True),
        Attribute("weight", DataType.FLOAT),
        Attribute("material", DataType.STRING),
    ]))
    schema.add_atom_type(AtomType("Supplier", [
        Attribute("sname", DataType.STRING, required=True),
        Attribute("rating", DataType.INT),
    ]))
    schema.add_atom_type(AtomType("Document", [
        Attribute("title", DataType.STRING, required=True),
        Attribute("revision", DataType.INT),
    ]))
    schema.add_link_type(LinkType("contains", "Part", "Component",
                                  Cardinality.MANY_TO_MANY))
    schema.add_link_type(LinkType("supplied_by", "Component", "Supplier",
                                  Cardinality.MANY_TO_MANY))
    schema.add_link_type(LinkType("documented_by", "Part", "Document",
                                  Cardinality.ONE_TO_MANY))
    return schema


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one generated BOM workload."""

    parts: int = 20
    fanout: int = 4              # components per part
    suppliers: int = 5
    documents_per_part: int = 1
    versions_per_atom: int = 4   # target history length (>= 1)
    seed: int = 1992
    share_components: bool = True  # components reused across parts (n:m)
    churn_fraction: float = 1.0  # share of atoms updated per churn round

    def describe(self) -> str:
        return (f"parts={self.parts} fanout={self.fanout} "
                f"versions={self.versions_per_atom} seed={self.seed}")


_MATERIALS = ("steel", "aluminium", "carbon", "titanium", "polymer")


def generate_bom(spec: WorkloadSpec) -> Tuple[List[Op], Dict[str, List[int]]]:
    """Generate the operation list and the handle groups per atom type.

    Returns ``(ops, groups)`` where ``groups`` maps type names to the
    handles created for that type (handles are 0-based and dense).
    """
    rng = random.Random(spec.seed)
    ops: List[Op] = []
    groups: Dict[str, List[int]] = {"Part": [], "Component": [],
                                    "Supplier": [], "Document": []}
    next_handle = 0

    def create(type_name: str, values: Dict[str, Any]) -> int:
        nonlocal next_handle
        handle = next_handle
        next_handle += 1
        groups[type_name].append(handle)
        ops.append(("insert", handle, type_name, values, 0))
        return handle

    suppliers = [create("Supplier", {"sname": f"supplier-{i}",
                                     "rating": rng.randint(1, 5)})
                 for i in range(spec.suppliers)]
    component_pool: List[int] = []
    for p in range(spec.parts):
        part = create("Part", {"name": f"part-{p}",
                               "cost": round(rng.uniform(10, 500), 2),
                               "released": rng.random() < 0.5})
        for c in range(spec.fanout):
            reuse = (spec.share_components and component_pool
                     and rng.random() < 0.3)
            if reuse:
                component = rng.choice(component_pool)
            else:
                component = create("Component", {
                    "cname": f"component-{p}-{c}",
                    "weight": round(rng.uniform(0.1, 25.0), 3),
                    "material": rng.choice(_MATERIALS)})
                component_pool.append(component)
                supplier = rng.choice(suppliers)
                ops.append(("link", "supplied_by", component, supplier, 0))
            ops.append(("link", "contains", part, component, 0))
        for d in range(spec.documents_per_part):
            document = create("Document", {"title": f"doc-{p}-{d}",
                                           "revision": 1})
            ops.append(("link", "documented_by", part, document, 0))

    # Phase 2: churn.  Every batch advances time by one chronon and
    # updates a deterministic slice of the atoms.
    churn_targets: List[Tuple[str, int]] = (
        [("Part", h) for h in groups["Part"]]
        + [("Component", h) for h in groups["Component"]]
        + [("Document", h) for h in groups["Document"]])
    per_round = max(1, int(len(churn_targets) * spec.churn_fraction))
    for round_number in range(1, spec.versions_per_atom):
        at = round_number
        rng.shuffle(churn_targets)
        for type_name, handle in churn_targets[:per_round]:
            if type_name == "Part":
                changes: Dict[str, Any] = {
                    "cost": round(rng.uniform(10, 500), 2)}
            elif type_name == "Component":
                changes = {"weight": round(rng.uniform(0.1, 25.0), 3)}
            else:
                changes = {"revision": round_number + 1}
            ops.append(("update", handle, changes, at))
    return ops, groups


# ---------------------------------------------------------------------------
# Replay adapters
# ---------------------------------------------------------------------------


def apply_to_database(db: TemporalDatabase, ops: Sequence[Op],
                      ops_per_txn: int = 50) -> Dict[int, int]:
    """Replay into the engine; returns handle -> atom id."""
    ids: Dict[int, int] = {}
    txn = db.begin()
    in_txn = 0
    try:
        for op in ops:
            if in_txn >= ops_per_txn:
                txn.commit()
                txn = db.begin()
                in_txn = 0
            kind = op[0]
            if kind == "insert":
                _, handle, type_name, values, at = op
                ids[handle] = txn.insert(type_name, values, valid_from=at)
            elif kind == "update":
                _, handle, changes, at = op
                txn.update(ids[handle], changes, valid_from=at)
            elif kind == "delete":
                _, handle, at = op
                txn.delete(ids[handle], valid_from=at)
            elif kind == "link":
                _, link_name, h1, h2, at = op
                txn.link(link_name, ids[h1], ids[h2], valid_from=at)
            elif kind == "unlink":
                _, link_name, h1, h2, at = op
                txn.unlink(link_name, ids[h1], ids[h2], valid_from=at)
            else:
                raise ValueError(f"unknown op {kind!r}")
            in_txn += 1
    except BaseException:
        if txn.is_active:
            txn.abort()
        raise
    txn.commit()
    return ids


def apply_to_reference(ref, ops: Sequence[Op]) -> Dict[int, int]:
    """Replay into the in-memory oracle; returns handle -> atom id."""
    ids: Dict[int, int] = {}
    for op in ops:
        kind = op[0]
        if kind == "insert":
            _, handle, type_name, values, at = op
            ids[handle] = ref.insert(type_name, values, valid_from=at)
        elif kind == "update":
            _, handle, changes, at = op
            ref.update(ids[handle], changes, valid_from=at)
        elif kind == "delete":
            _, handle, at = op
            ref.delete(ids[handle], valid_from=at)
        elif kind == "link":
            _, link_name, h1, h2, at = op
            ref.link(link_name, ids[h1], ids[h2], valid_from=at)
        elif kind == "unlink":
            _, link_name, h1, h2, at = op
            ref.unlink(link_name, ids[h1], ids[h2], valid_from=at)
        else:
            raise ValueError(f"unknown op {kind!r}")
    return ids


def apply_to_snapshot(snap, ops: Sequence[Op]) -> Dict[int, int]:
    """Replay into the snapshot baseline (time-ordered by construction)."""
    ids: Dict[int, int] = {}
    for op in ops:
        kind = op[0]
        if kind == "insert":
            _, handle, type_name, values, at = op
            ids[handle] = snap.insert(type_name, values, at)
        elif kind == "update":
            _, handle, changes, at = op
            snap.update(ids[handle], changes, at)
        elif kind == "delete":
            _, handle, at = op
            snap.delete(ids[handle], at)
        elif kind == "link":
            _, link_name, h1, h2, at = op
            snap.link(link_name, ids[h1], ids[h2], at)
        elif kind == "unlink":
            _, link_name, h1, h2, at = op
            snap.unlink(link_name, ids[h1], ids[h2], at)
        else:
            raise ValueError(f"unknown op {kind!r}")
    return ids


def apply_to_tuple_timestamp(flat, ops: Sequence[Op]) -> Dict[int, int]:
    """Replay into the 1NF tuple-timestamping baseline."""
    ids: Dict[int, int] = {}
    for op in ops:
        kind = op[0]
        if kind == "insert":
            _, handle, type_name, values, at = op
            ids[handle] = flat.insert(type_name, values, valid_from=at)
        elif kind == "update":
            _, handle, changes, at = op
            flat.update(ids[handle], changes, valid_from=at)
        elif kind == "delete":
            _, handle, at = op
            flat.delete(ids[handle], valid_from=at)
        elif kind == "link":
            _, link_name, h1, h2, at = op
            flat.link(link_name, ids[h1], ids[h2], valid_from=at)
        elif kind == "unlink":
            _, link_name, h1, h2, at = op
            flat.unlink(link_name, ids[h1], ids[h2], valid_from=at)
        else:
            raise ValueError(f"unknown op {kind!r}")
    return ids

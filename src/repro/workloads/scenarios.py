"""Named workload specifications for the reconstructed experiments.

Each helper returns a :class:`~repro.workloads.generator.WorkloadSpec`
scaled for one experiment's sweep axis; DESIGN.md's experiment index
references these by name.  Sizes are deliberately laptop-scale — the
benchmarks compare *shapes* across strategies, which small inputs show
just as well.
"""

from __future__ import annotations

from repro.workloads.generator import WorkloadSpec


def small_spec(seed: int = 1992) -> WorkloadSpec:
    """The default small BOM used by functional tests and quick runs."""
    return WorkloadSpec(parts=10, fanout=3, suppliers=4,
                        versions_per_atom=3, seed=seed)


def history_depth_spec(versions: int, parts: int = 8,
                       seed: int = 1992) -> WorkloadSpec:
    """Sweep axis of R-T1 / R-F1 / R-F3 / R-T3: history length."""
    return WorkloadSpec(parts=parts, fanout=3, suppliers=4,
                        versions_per_atom=versions, seed=seed)


def fanout_spec(fanout: int, parts: int = 6,
                seed: int = 1992) -> WorkloadSpec:
    """Sweep axis of R-F2: molecule size (components per part)."""
    return WorkloadSpec(parts=parts, fanout=fanout, suppliers=4,
                        versions_per_atom=2, seed=seed,
                        share_components=False)


def buffer_sweep_spec(seed: int = 1992) -> WorkloadSpec:
    """Fixed mid-size database for the buffer-pool sweep (R-F4)."""
    return WorkloadSpec(parts=40, fanout=4, suppliers=8,
                        versions_per_atom=6, seed=seed)

"""Shared fixtures: schemas, databases per strategy, storage scaffolding."""

from __future__ import annotations

import pytest

from repro import (
    AtomType,
    Attribute,
    Cardinality,
    DataType,
    DatabaseConfig,
    LinkType,
    Schema,
    TemporalDatabase,
    VersionStrategy,
)
from repro.storage.buffer import BufferManager
from repro.storage.disk import DiskManager

ALL_STRATEGIES = list(VersionStrategy)


@pytest.fixture
def cad_schema() -> Schema:
    """The small CAD schema most functional tests use."""
    schema = Schema("cad")
    schema.add_atom_type(AtomType("Part", [
        Attribute("name", DataType.STRING, required=True),
        Attribute("cost", DataType.FLOAT),
        Attribute("released", DataType.BOOL),
    ]))
    schema.add_atom_type(AtomType("Component", [
        Attribute("cname", DataType.STRING),
        Attribute("weight", DataType.FLOAT),
    ]))
    schema.add_atom_type(AtomType("Supplier", [
        Attribute("sname", DataType.STRING),
        Attribute("rating", DataType.INT),
    ]))
    schema.add_link_type(LinkType("contains", "Part", "Component",
                                  Cardinality.MANY_TO_MANY))
    schema.add_link_type(LinkType("supplied_by", "Component", "Supplier",
                                  Cardinality.MANY_TO_MANY))
    return schema


@pytest.fixture(params=ALL_STRATEGIES, ids=[s.value for s in ALL_STRATEGIES])
def strategy(request) -> VersionStrategy:
    """Parametrizes a test over all three version-storage strategies."""
    return request.param


@pytest.fixture
def db(tmp_path, cad_schema, strategy) -> TemporalDatabase:
    """A fresh database (per strategy) that is closed after the test."""
    database = TemporalDatabase.create(
        str(tmp_path / "db"), cad_schema,
        DatabaseConfig(strategy=strategy, buffer_pages=64))
    yield database
    if not database._closed:
        database.close()


@pytest.fixture
def disk(tmp_path) -> DiskManager:
    manager = DiskManager(tmp_path / "pages.db")
    yield manager
    manager.close()


@pytest.fixture
def buffer(disk) -> BufferManager:
    return BufferManager(disk, capacity=32)

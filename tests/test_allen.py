"""Tests for Allen's interval relations."""

from hypothesis import given
from hypothesis import strategies as st

from repro.temporal import AllenRelation, Interval, allen_relation

chronons = st.integers(min_value=-100, max_value=100)


@st.composite
def intervals(draw):
    start = draw(chronons)
    end = draw(st.integers(min_value=start + 1, max_value=102))
    return Interval(start, end)


class TestNamedCases:
    def test_before_and_after(self):
        assert allen_relation(Interval(0, 2), Interval(5, 7)) is AllenRelation.BEFORE
        assert allen_relation(Interval(5, 7), Interval(0, 2)) is AllenRelation.AFTER

    def test_meets_and_met_by(self):
        assert allen_relation(Interval(0, 5), Interval(5, 7)) is AllenRelation.MEETS
        assert allen_relation(Interval(5, 7), Interval(0, 5)) is AllenRelation.MET_BY

    def test_overlaps_and_overlapped_by(self):
        assert allen_relation(Interval(0, 5), Interval(3, 8)) is AllenRelation.OVERLAPS
        assert allen_relation(Interval(3, 8), Interval(0, 5)) is AllenRelation.OVERLAPPED_BY

    def test_starts_and_started_by(self):
        assert allen_relation(Interval(0, 3), Interval(0, 8)) is AllenRelation.STARTS
        assert allen_relation(Interval(0, 8), Interval(0, 3)) is AllenRelation.STARTED_BY

    def test_during_and_contains(self):
        assert allen_relation(Interval(2, 4), Interval(0, 8)) is AllenRelation.DURING
        assert allen_relation(Interval(0, 8), Interval(2, 4)) is AllenRelation.CONTAINS

    def test_finishes_and_finished_by(self):
        assert allen_relation(Interval(5, 8), Interval(0, 8)) is AllenRelation.FINISHES
        assert allen_relation(Interval(0, 8), Interval(5, 8)) is AllenRelation.FINISHED_BY

    def test_equals(self):
        assert allen_relation(Interval(1, 4), Interval(1, 4)) is AllenRelation.EQUALS


@given(intervals(), intervals())
def test_relation_is_total_and_inverse_consistent(a, b):
    forward = allen_relation(a, b)
    backward = allen_relation(b, a)
    assert forward.inverse is backward


@given(intervals(), intervals())
def test_overlap_predicate_matches_relation(a, b):
    relation = allen_relation(a, b)
    sharing = {AllenRelation.OVERLAPS, AllenRelation.OVERLAPPED_BY,
               AllenRelation.STARTS, AllenRelation.STARTED_BY,
               AllenRelation.DURING, AllenRelation.CONTAINS,
               AllenRelation.FINISHES, AllenRelation.FINISHED_BY,
               AllenRelation.EQUALS}
    assert a.overlaps(b) == (relation in sharing)


@given(intervals())
def test_equals_is_reflexive(a):
    assert allen_relation(a, a) is AllenRelation.EQUALS


def test_all_thirteen_relations_reachable():
    pairs = [
        (Interval(0, 1), Interval(2, 3)),   # before
        (Interval(0, 2), Interval(2, 3)),   # meets
        (Interval(0, 3), Interval(2, 5)),   # overlaps
        (Interval(0, 2), Interval(0, 5)),   # starts
        (Interval(1, 2), Interval(0, 5)),   # during
        (Interval(3, 5), Interval(0, 5)),   # finishes
        (Interval(0, 5), Interval(0, 5)),   # equals
        (Interval(0, 5), Interval(3, 5)),   # finished_by
        (Interval(0, 5), Interval(1, 2)),   # contains
        (Interval(0, 5), Interval(0, 2)),   # started_by
        (Interval(2, 5), Interval(0, 3)),   # overlapped_by
        (Interval(2, 3), Interval(0, 2)),   # met_by
        (Interval(2, 3), Interval(0, 1)),   # after
    ]
    seen = {allen_relation(a, b) for a, b in pairs}
    assert seen == set(AllenRelation)

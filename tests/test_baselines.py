"""Tests for the snapshot and tuple-timestamping baselines."""

import pytest

from repro import MoleculeType
from repro.baselines import SnapshotDatabase, TupleTimestampDatabase
from repro.errors import TemporalUpdateError, UnknownAtomError
from repro.temporal import Interval


@pytest.fixture
def snap(cad_schema):
    return SnapshotDatabase(cad_schema)


@pytest.fixture
def flat(cad_schema):
    return TupleTimestampDatabase(cad_schema)


class TestSnapshot:
    def test_states_over_time(self, snap):
        part = snap.insert("Part", {"name": "x", "cost": 1.0}, 0)
        snap.update(part, {"cost": 2.0}, 10)
        assert snap.version_at(part, 5).values["cost"] == 1.0
        assert snap.version_at(part, 10).values["cost"] == 2.0
        assert snap.version_at(part, 99).values["cost"] == 2.0

    def test_before_creation(self, snap):
        part = snap.insert("Part", {"name": "x"}, 5)
        assert snap.version_at(part, 2) is None

    def test_delete_removes_and_unlinks(self, snap):
        part = snap.insert("Part", {"name": "p"}, 0)
        hub = snap.insert("Component", {"cname": "h"}, 0)
        snap.link("contains", part, hub, 0)
        snap.delete(hub, 10)
        assert snap.version_at(hub, 10) is None
        assert snap.version_at(part, 10).targets("contains") == frozenset()
        assert snap.version_at(part, 5).targets("contains") == {hub}

    def test_retroactive_change_rejected(self, snap):
        snap.insert("Part", {"name": "x"}, 10)
        with pytest.raises(TemporalUpdateError):
            snap.insert("Part", {"name": "y"}, 5)

    def test_unknown_atom(self, snap):
        with pytest.raises(UnknownAtomError):
            snap.update(9, {"name": "x"}, 0)

    def test_molecule(self, snap, cad_schema):
        part = snap.insert("Part", {"name": "p"}, 0)
        hub = snap.insert("Component", {"cname": "h"}, 0)
        snap.link("contains", part, hub, 0)
        mtype = MoleculeType.parse("Part.contains.Component", cad_schema)
        assert snap.molecule_at(part, mtype, 5).atom_count() == 2

    def test_molecule_history(self, snap, cad_schema):
        part = snap.insert("Part", {"name": "p"}, 0)
        hub = snap.insert("Component", {"cname": "h"}, 0)
        snap.link("contains", part, hub, 5)
        mtype = MoleculeType.parse("Part.contains.Component", cad_schema)
        states = snap.molecule_history(part, mtype, Interval(0, 20))
        assert [m.atom_count() for _, m in states] == [1, 2]

    def test_storage_grows_per_change_point(self, snap):
        part = snap.insert("Part", {"name": "x"}, 0)
        one = snap.storage_bytes()
        for t in range(1, 11):
            snap.update(part, {"cost": float(t)}, t)
        assert snap.snapshot_count() == 11
        assert snap.storage_bytes() > 10 * one * 0.9  # ~linear blowup

    def test_same_time_changes_share_snapshot(self, snap):
        snap.insert("Part", {"name": "a"}, 0)
        snap.insert("Part", {"name": "b"}, 0)
        assert snap.snapshot_count() == 1


class TestTupleTimestamp:
    def test_update_closes_rows(self, flat):
        part = flat.insert("Part", {"name": "x", "cost": 1.0}, 0)
        flat.update(part, {"cost": 2.0}, 10)
        assert flat.version_at(part, 5).values["cost"] == 1.0
        assert flat.version_at(part, 15).values["cost"] == 2.0
        assert flat.row_counts()["Part"] == 2

    def test_bounded_validity(self, flat):
        part = flat.insert("Part", {"name": "x"}, 0, valid_to=10)
        assert flat.version_at(part, 9) is not None
        assert flat.version_at(part, 10) is None

    def test_update_outside_validity_rejected(self, flat):
        part = flat.insert("Part", {"name": "x"}, 0, valid_to=5)
        with pytest.raises(TemporalUpdateError):
            flat.update(part, {"name": "y"}, 10)

    def test_delete_truncates(self, flat):
        part = flat.insert("Part", {"name": "x"}, 0)
        flat.delete(part, 10)
        assert flat.version_at(part, 9) is not None
        assert flat.version_at(part, 10) is None

    def test_link_rows_and_joins(self, flat, cad_schema):
        part = flat.insert("Part", {"name": "p"}, 0)
        hub = flat.insert("Component", {"cname": "h"}, 0)
        flat.link("contains", part, hub, 5, valid_to=15)
        mtype = MoleculeType.parse("Part.contains.Component", cad_schema)
        assert flat.molecule_at(part, mtype, 4).atom_count() == 1
        assert flat.molecule_at(part, mtype, 10).atom_count() == 2
        assert flat.molecule_at(part, mtype, 15).atom_count() == 1

    def test_unlink(self, flat):
        part = flat.insert("Part", {"name": "p"}, 0)
        hub = flat.insert("Component", {"cname": "h"}, 0)
        flat.link("contains", part, hub, 0)
        flat.unlink("contains", part, hub, 10)
        assert flat.version_at(part, 5).targets("contains") == {hub}
        assert flat.version_at(part, 10).targets("contains") == frozenset()

    def test_molecule_history_change_points(self, flat, cad_schema):
        part = flat.insert("Part", {"name": "p", "cost": 1.0}, 0)
        flat.update(part, {"cost": 2.0}, 10)
        mtype = MoleculeType.parse("Part", cad_schema)
        states = flat.molecule_history(part, mtype, Interval(0, 20))
        assert [m.root.version.values["cost"] for _, m in states] == [
            1.0, 2.0]

    def test_atoms_of_type_at(self, flat):
        a = flat.insert("Part", {"name": "a"}, 0, valid_to=10)
        b = flat.insert("Part", {"name": "b"}, 5)
        assert flat.atoms_of_type("Part", 7) == [a, b]
        assert flat.atoms_of_type("Part", 12) == [b]

    def test_rows_touched_counts_join_work(self, flat, cad_schema):
        part = flat.insert("Part", {"name": "p"}, 0)
        for i in range(10):
            comp = flat.insert("Component", {"cname": f"c{i}"}, 0)
            flat.link("contains", part, comp, 0)
        flat.rows_touched = 0
        mtype = MoleculeType.parse("Part.contains.Component", cad_schema)
        flat.molecule_at(part, mtype, 5)
        assert flat.rows_touched > 100  # joins sweep the link table

    def test_storage_bytes_counts_rows(self, flat):
        part = flat.insert("Part", {"name": "x"}, 0)
        one = flat.storage_bytes()
        flat.update(part, {"cost": 1.0}, 5)
        assert flat.storage_bytes() > one

"""Tests for the page-based B+-tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.access.btree import BPlusTree
from repro.access.keys import encode_int
from repro.errors import KeyEncodingError
from repro.storage.buffer import BufferManager
from repro.storage.disk import DiskManager


@pytest.fixture
def tree(buffer):
    return BPlusTree(buffer, key_size=8, value_size=8)


def k(value):
    return encode_int(value)


class TestBasics:
    def test_empty_tree(self, tree):
        assert tree.search(k(1)) == []
        assert list(tree.items()) == []
        assert len(tree) == 0
        tree.check()

    def test_insert_search(self, tree):
        tree.insert(k(5), k(50))
        assert tree.search(k(5)) == [k(50)]
        assert tree.search(k(6)) == []

    def test_key_width_enforced(self, tree):
        with pytest.raises(KeyEncodingError):
            tree.insert(b"short", k(1))
        with pytest.raises(KeyEncodingError):
            tree.insert(k(1), b"xx")

    def test_duplicates_kept(self, tree):
        for i in range(5):
            tree.insert(k(7), k(i))
        assert sorted(tree.search(k(7))) == sorted(k(i) for i in range(5))

    def test_items_sorted(self, tree):
        for value in (5, 3, 9, 1, 7):
            tree.insert(k(value), k(value * 10))
        assert [key for key, _ in tree.items()] == [k(1), k(3), k(5),
                                                    k(7), k(9)]


class TestSplits:
    def test_growth_forces_splits(self, tree):
        count = 3000  # hundreds of leaf pages
        for i in range(count):
            tree.insert(k(i), k(i))
        assert tree.check() >= 1  # height grew
        assert len(tree) == count
        for probe in (0, 1, count // 2, count - 1):
            assert tree.search(k(probe)) == [k(probe)]

    def test_reverse_insertion_order(self, tree):
        for i in reversed(range(1500)):
            tree.insert(k(i), k(i))
        tree.check()
        assert [key for key, _ in tree.items()] == [k(i) for i in range(1500)]

    def test_random_insertion_order(self, tree):
        values = list(range(1500))
        random.Random(7).shuffle(values)
        for value in values:
            tree.insert(k(value), k(value))
        tree.check()
        assert len(tree) == 1500

    def test_heavy_duplicates_split_correctly(self, tree):
        for i in range(1200):
            tree.insert(k(i % 3), k(i))
        tree.check()
        assert len(tree.search(k(0))) == 400
        assert len(tree.search(k(1))) == 400


class TestRangeScan:
    def test_half_open_semantics(self, tree):
        for i in range(20):
            tree.insert(k(i), k(i))
        got = [key for key, _ in tree.range_scan(k(5), k(10))]
        assert got == [k(i) for i in range(5, 10)]

    def test_inclusive_upper(self, tree):
        for i in range(20):
            tree.insert(k(i), k(i))
        got = [key for key, _ in tree.range_scan(k(5), k(10),
                                                 hi_inclusive=True)]
        assert got == [k(i) for i in range(5, 11)]

    def test_unbounded_scans(self, tree):
        for i in range(10):
            tree.insert(k(i), k(i))
        assert len(list(tree.range_scan(None, k(5)))) == 5
        assert len(list(tree.range_scan(k(5), None))) == 5

    def test_scan_across_leaves(self, tree):
        for i in range(2000):
            tree.insert(k(i), k(i))
        got = list(tree.range_scan(k(900), k(1100)))
        assert len(got) == 200

    def test_scan_empty_range(self, tree):
        for i in range(10):
            tree.insert(k(i), k(i))
        assert list(tree.range_scan(k(100), k(200))) == []


class TestDelete:
    def test_delete_specific_pair(self, tree):
        tree.insert(k(1), k(10))
        tree.insert(k(1), k(20))
        assert tree.delete(k(1), k(10))
        assert tree.search(k(1)) == [k(20)]

    def test_delete_missing(self, tree):
        assert not tree.delete(k(1), k(10))
        tree.insert(k(1), k(10))
        assert not tree.delete(k(1), k(99))

    def test_delete_everything(self, tree):
        for i in range(800):
            tree.insert(k(i), k(i))
        for i in range(800):
            assert tree.delete(k(i), k(i))
        assert list(tree.items()) == []
        tree.check()

    def test_delete_duplicate_across_leaves(self, tree):
        for i in range(600):
            tree.insert(k(5), k(i))
        assert tree.delete(k(5), k(599))
        assert tree.delete(k(5), k(0))
        assert len(tree.search(k(5))) == 598


class TestPersistence:
    def test_reopen_by_root(self, tmp_path):
        disk = DiskManager(tmp_path / "t.db")
        pool = BufferManager(disk, capacity=64)
        tree = BPlusTree(pool, key_size=8, value_size=8)
        for i in range(500):
            tree.insert(k(i), k(i * 2))
        root = tree.root_page_id
        pool.flush_all()
        reopened = BPlusTree(pool, key_size=8, value_size=8,
                             root_page_id=root)
        assert reopened.search(k(250)) == [k(500)]
        reopened.check()
        disk.close()


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["insert", "delete"]),
                          st.integers(0, 50), st.integers(0, 5)),
                max_size=120))
def test_random_operations_match_sorted_model(tmp_path_factory, operations):
    directory = tmp_path_factory.mktemp("btreeprop")
    disk = DiskManager(directory / "t.db", page_size=256)  # tiny: force splits
    pool = BufferManager(disk, capacity=64)
    tree = BPlusTree(pool, key_size=8, value_size=8)
    model = []
    for kind, key, value in operations:
        pair = (k(key), k(value))
        if kind == "insert":
            tree.insert(*pair)
            model.append(pair)
        else:
            present = pair in model
            assert tree.delete(*pair) == present
            if present:
                model.remove(pair)
    assert sorted(tree.items()) == sorted(model)
    tree.check()
    disk.close()


class TestInsertMany:
    def test_matches_sequential_inserts(self, tree):
        pairs = [(k(key), k(key * 10)) for key in range(200)]
        shuffled = list(pairs)
        random.Random(7).shuffle(shuffled)
        assert tree.insert_many(shuffled) == 200
        assert sorted(tree.items()) == sorted(pairs)
        tree.check()

    def test_splits_under_small_pages(self, tmp_path):
        disk = DiskManager(tmp_path / "t.db", page_size=256)
        pool = BufferManager(disk, capacity=64)
        tree = BPlusTree(pool, key_size=8, value_size=8)
        pairs = [(k(key), k(key)) for key in range(500)]
        assert tree.insert_many(pairs) == 500
        assert len(tree) == 500
        assert tree.search(k(0)) == [k(0)]
        assert tree.search(k(499)) == [k(499)]
        tree.check()
        disk.close()

    def test_interleaves_with_existing_keys(self, tree):
        for key in range(0, 100, 2):
            tree.insert(k(key), k(key))
        tree.insert_many([(k(key), k(key)) for key in range(1, 100, 2)])
        assert [key for key, _ in tree.items()] == [k(key)
                                                    for key in range(100)]
        tree.check()

    def test_skip_present_dedupes_against_tree_and_batch(self, tree):
        tree.insert(k(5), k(50))
        batch = [(k(5), k(50)), (k(5), k(50)), (k(6), k(60)), (k(6), k(60))]
        assert tree.insert_many(batch, skip_present=True) == 1
        assert tree.search(k(5)) == [k(50)]
        assert tree.search(k(6)) == [k(60)]
        tree.check()

    def test_without_skip_present_keeps_duplicates(self, tree):
        assert tree.insert_many([(k(1), k(10)), (k(1), k(10))]) == 2
        assert tree.search(k(1)) == [k(10), k(10)]
        tree.check()

    def test_skip_present_probe_crosses_leaf_boundary(self, tmp_path):
        # Tiny pages force many leaves; equal keys inserted one by one
        # land right of their separator, so the batched probe must walk
        # the sibling chain to see them.
        disk = DiskManager(tmp_path / "t.db", page_size=256)
        pool = BufferManager(disk, capacity=64)
        tree = BPlusTree(pool, key_size=8, value_size=8)
        for key in range(300):
            tree.insert(k(key), k(key))
        assert tree.insert_many([(k(key), k(key)) for key in range(300)],
                                skip_present=True) == 0
        assert len(tree) == 300
        tree.check()
        disk.close()

    def test_validates_key_width(self, tree):
        with pytest.raises(KeyEncodingError):
            tree.insert_many([(b"short", k(1))])


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 60), max_size=150),
       st.lists(st.integers(0, 60), max_size=150))
def test_insert_many_matches_model(tmp_path_factory, preload, batch):
    directory = tmp_path_factory.mktemp("btreebatch")
    disk = DiskManager(directory / "t.db", page_size=256)  # tiny: force splits
    pool = BufferManager(disk, capacity=64)
    tree = BPlusTree(pool, key_size=8, value_size=8)
    model = []
    for key in preload:
        tree.insert(k(key), k(key))
        model.append((k(key), k(key)))
    pairs = [(k(key), k(key)) for key in batch]
    assert tree.insert_many(pairs) == len(pairs)
    model.extend(pairs)
    assert sorted(tree.items()) == sorted(model)
    tree.check()
    disk.close()

"""Tests for the buffer manager."""

import pytest

from repro.errors import BufferPoolExhaustedError, PageError
from repro.storage.buffer import BufferManager, ReplacementPolicy
from repro.storage.disk import DiskManager


@pytest.fixture(params=[ReplacementPolicy.LRU, ReplacementPolicy.CLOCK],
                ids=["lru", "clock"])
def pool(tmp_path, request):
    disk = DiskManager(tmp_path / "a.db")
    manager = BufferManager(disk, capacity=4, policy=request.param)
    yield manager
    manager.flush_all()
    disk.close()


def _fill(pool, count):
    pids = []
    for _ in range(count):
        frame = pool.new_page()
        frame.data[0] = len(pids) + 1
        pids.append(frame.page_id)
        pool.unpin(frame.page_id, dirty=True)
    return pids


class TestPinning:
    def test_pin_reads_page(self, pool):
        (pid,) = _fill(pool, 1)
        frame = pool.pin(pid)
        assert frame.data[0] == 1
        pool.unpin(pid)

    def test_unpin_unknown_page_rejected(self, pool):
        with pytest.raises(PageError):
            pool.unpin(12345)

    def test_double_unpin_rejected(self, pool):
        (pid,) = _fill(pool, 1)
        pool.pin(pid)
        pool.unpin(pid)
        with pytest.raises(PageError):
            pool.unpin(pid)

    def test_context_manager_unpins(self, pool):
        (pid,) = _fill(pool, 1)
        with pool.page(pid) as frame:
            assert frame.pin_count == 1
        assert pool.pinned_pages() == {}


class TestEviction:
    def test_capacity_respected(self, pool):
        _fill(pool, 10)
        assert pool.resident_pages() <= pool.capacity

    def test_evicted_dirty_pages_written_back(self, pool):
        pids = _fill(pool, 10)  # forces evictions of dirty pages
        pool.stats.reset()
        frame = pool.pin(pids[0])
        assert frame.data[0] == 1  # content survived eviction
        pool.unpin(pids[0])

    def test_pinned_pages_never_evicted(self, pool):
        pids = _fill(pool, 3)
        held = [pool.pin(pid) for pid in pids]
        pool.new_page().page_id  # fills the last slot (stays pinned)
        with pytest.raises(BufferPoolExhaustedError):
            pool.new_page()
        for frame in held:
            pool.unpin(frame.page_id)

    def test_eviction_counter(self, pool):
        _fill(pool, 10)
        assert pool.stats.evictions >= 6


class TestClockPolicy:
    """Second-chance behavior of the CLOCK replacement policy."""

    @pytest.fixture
    def clock_pool(self, tmp_path):
        disk = DiskManager(tmp_path / "clock.db")
        manager = BufferManager(disk, capacity=3,
                                policy=ReplacementPolicy.CLOCK)
        yield manager
        manager.flush_all()
        disk.close()

    def test_unreferenced_frame_evicted_first(self, clock_pool):
        pids = _fill(clock_pool, 3)
        # All frames carry the reference bit after creation; strip it
        # from the middle frame only.
        clock_pool._frames[pids[1]].referenced = False
        clock_pool.new_page()  # needs a slot: runs the clock sweep
        resident = set(clock_pool._frames)
        assert pids[1] not in resident  # the unreferenced frame lost
        assert pids[0] in resident      # spent its second chance, survived
        assert pids[2] in resident

    def test_sweep_clears_reference_bits(self, clock_pool):
        pids = _fill(clock_pool, 3)
        clock_pool.new_page()
        # The sweep that found a victim cleared bits it passed over; the
        # survivors from the original trio are now unreferenced.
        survivors = [pid for pid in pids if pid in clock_pool._frames]
        assert survivors
        assert all(not clock_pool._frames[pid].referenced
                   for pid in survivors)

    def test_repinned_frame_survives_two_rounds(self, clock_pool):
        # A frame whose reference bit is armed gets a second chance as
        # long as some unreferenced, unpinned frame exists to take the
        # eviction instead.
        pids = _fill(clock_pool, 3)
        for _ in range(2):
            for pid, frame in clock_pool._frames.items():
                frame.referenced = pid == pids[0]  # only the hot frame
            clock_pool.pin(pids[0])   # re-arm via the normal path too
            clock_pool.unpin(pids[0])
            clock_pool.new_page()     # evicts an unreferenced frame
            assert pids[0] in clock_pool._frames
        assert clock_pool.stats.evictions == 2


    def test_hand_resumes_by_page_id(self, clock_pool):
        # Sweep order is ascending page id; the hand resumes just past
        # the last-visited id.
        pids = _fill(clock_pool, 3)
        a, b, c = sorted(clock_pool._frames)
        for frame in clock_pool._frames.values():
            frame.referenced = False
        clock_pool._clock_hand_key = a
        clock_pool.new_page()  # sweep starts at b, which is unreferenced
        assert b not in clock_pool._frames
        assert a in clock_pool._frames and c in clock_pool._frames

    def test_hand_survives_eviction_of_hand_page(self, clock_pool):
        # The page the hand last visited may be freed between sweeps;
        # the hand must resume at its successor, not drift arbitrarily
        # (the old positional hand indexed a stale keys() snapshot).
        _fill(clock_pool, 3)
        a, b, c = sorted(clock_pool._frames)
        clock_pool._clock_hand_key = b
        clock_pool.free_page(b)  # hand page vanishes
        refill = clock_pool.new_page()  # no sweep: a slot is free
        clock_pool.unpin(refill.page_id)
        for frame in clock_pool._frames.values():
            frame.referenced = False
        clock_pool.new_page()  # resumes after the missing id: visits c
        assert c not in clock_pool._frames
        assert a in clock_pool._frames

    def test_hot_page_survives_churn(self, clock_pool):
        # A page that is re-referenced between sweeps must never be the
        # victim while colder pages are available, no matter how much
        # the pool churns around it (the drifting hand of the old code
        # violated this by skipping frames after evictions).
        pids = _fill(clock_pool, 3)
        hot = pids[0]
        for pid in pids[1:]:
            clock_pool._frames[pid].referenced = False  # cold start
        for _ in range(30):
            clock_pool.pin(hot)        # re-arm the reference bit
            clock_pool.unpin(hot)
            frame = clock_pool.new_page()  # churn: force an eviction
            clock_pool.unpin(frame.page_id)
            assert hot in clock_pool._frames, "hot page evicted under churn"
        assert clock_pool.stats.evictions == 30

    def test_eviction_counter_routed_through_registry(self, clock_pool):
        _fill(clock_pool, 6)
        assert clock_pool.stats.evictions >= 3
        assert (clock_pool.metrics.value("buffer.evictions")
                == clock_pool.stats.evictions)


class TestStats:
    def test_hits_and_misses(self, pool):
        pids = _fill(pool, 2)
        pool.stats.reset()
        pool.pin(pids[0])
        pool.unpin(pids[0])
        pool.pin(pids[0])
        pool.unpin(pids[0])
        assert pool.stats.hits == 2  # resident after creation
        _fill(pool, 6)  # force out
        pool.pin(pids[0])
        pool.unpin(pids[0])
        assert pool.stats.misses >= 1

    def test_hit_ratio(self, pool):
        assert pool.stats.hit_ratio == 0.0
        pids = _fill(pool, 1)
        pool.pin(pids[0])
        pool.unpin(pids[0])
        assert 0.0 < pool.stats.hit_ratio <= 1.0

    def test_hit_ratio_no_zero_division(self, pool):
        # Fresh pool and freshly reset pool both have hits+misses == 0;
        # the ratio must be a clean 0.0, not a ZeroDivisionError.
        assert pool.stats.hit_ratio == 0.0
        pids = _fill(pool, 1)
        pool.pin(pids[0])
        pool.unpin(pids[0])
        pool.stats.reset()
        assert pool.stats.hits == 0
        assert pool.stats.misses == 0
        assert pool.stats.hit_ratio == 0.0

    def test_stats_are_registry_views(self, pool):
        pids = _fill(pool, 1)
        pool.stats.reset()
        pool.pin(pids[0])
        pool.unpin(pids[0])
        assert pool.metrics.value("buffer.hits") == pool.stats.hits
        assert pool.metrics.value("buffer.misses") == pool.stats.misses


class TestFlush:
    def test_flush_all_persists(self, tmp_path):
        disk = DiskManager(tmp_path / "b.db")
        pool = BufferManager(disk, capacity=8)
        frame = pool.new_page()
        frame.data[:4] = b"ABCD"
        pool.unpin(frame.page_id, dirty=True)
        pool.flush_all()
        assert bytes(disk.read_page(frame.page_id)[:4]) == b"ABCD"
        disk.close()

    def test_flush_page_clears_dirty(self, pool):
        (pid,) = _fill(pool, 1)
        pool.flush_page(pid)
        pool.flush_page(pid)  # second flush is a no-op

    def test_free_page_returns_to_disk(self, pool):
        (pid,) = _fill(pool, 1)
        pool.free_page(pid)
        reused = pool.new_page()
        assert reused.page_id == pid
        pool.unpin(reused.page_id)

    def test_free_pinned_page_rejected(self, pool):
        (pid,) = _fill(pool, 1)
        pool.pin(pid)
        with pytest.raises(PageError):
            pool.free_page(pid)
        pool.unpin(pid)


class TestValidation:
    def test_zero_capacity_rejected(self, tmp_path):
        disk = DiskManager(tmp_path / "c.db")
        with pytest.raises(PageError):
            BufferManager(disk, capacity=0)
        disk.close()

"""Tests for molecule construction (time slices and histories).

These run against the in-memory reference database — the builder is
reader-agnostic, and the engine path is covered by the database and
differential tests.
"""

import pytest

from repro import MoleculeType
from repro.temporal import FOREVER, Interval
from repro.testing import ReferenceDatabase


@pytest.fixture
def ref(cad_schema):
    return ReferenceDatabase(cad_schema)


@pytest.fixture
def bom(ref):
    """part -contains-> {hub, rim}; hub -supplied_by-> acme."""
    part = ref.insert("Part", {"name": "wheel"}, valid_from=0)
    hub = ref.insert("Component", {"cname": "hub"}, valid_from=0)
    rim = ref.insert("Component", {"cname": "rim"}, valid_from=10)
    acme = ref.insert("Supplier", {"sname": "acme"}, valid_from=0)
    ref.link("contains", part, hub, valid_from=0)
    ref.link("contains", part, rim, valid_from=10)
    ref.link("supplied_by", hub, acme, valid_from=0)
    return {"part": part, "hub": hub, "rim": rim, "acme": acme, "ref": ref}


class TestTimeSlice:
    def test_single_atom_molecule(self, ref):
        part = ref.insert("Part", {"name": "x"}, valid_from=5)
        molecule = ref.molecule_at(part, "Part", 5)
        assert molecule.root.atom_id == part
        assert molecule.atom_count() == 1

    def test_root_not_valid_gives_none(self, ref):
        part = ref.insert("Part", {"name": "x"}, valid_from=5)
        assert ref.molecule_at(part, "Part", 2) is None

    def test_children_at_slice(self, bom):
        ref = bom["ref"]
        early = ref.molecule_at(bom["part"], "Part.contains.Component", 5)
        assert early.atom_count() == 2  # rim not yet valid
        late = ref.molecule_at(bom["part"], "Part.contains.Component", 15)
        assert late.atom_count() == 3

    def test_deep_molecule(self, bom):
        ref = bom["ref"]
        molecule = ref.molecule_at(
            bom["part"], "Part.contains.Component.supplied_by.Supplier", 15)
        # part + hub + rim + acme (under hub only)
        assert molecule.atom_count() == 4
        type_names = sorted(a.type_name for a in molecule.atoms())
        assert type_names == ["Component", "Component", "Part", "Supplier"]

    def test_reverse_molecule(self, bom):
        ref = bom["ref"]
        molecule = ref.molecule_at(bom["hub"], "Component.contains.Part", 5)
        assert molecule.atom_count() == 2
        assert molecule.root.type_name == "Component"

    def test_dangling_reference_ignored(self, bom):
        """A reference to an atom deleted at the slice time drops out."""
        ref = bom["ref"]
        ref.delete(bom["hub"], valid_from=20)
        molecule = ref.molecule_at(bom["part"], "Part.contains.Component", 25)
        assert molecule.atom_count() == 2  # part + rim

    def test_unlink_removes_child(self, bom):
        ref = bom["ref"]
        ref.unlink("contains", bom["part"], bom["hub"], valid_from=30)
        before = ref.molecule_at(bom["part"], "Part.contains.Component", 29)
        after = ref.molecule_at(bom["part"], "Part.contains.Component", 30)
        assert before.atom_count() == after.atom_count() + 1

    def test_as_of_reconstructs_old_belief(self, bom):
        ref = bom["ref"]
        tt_before = ref.now
        ref.update(bom["hub"], {"cname": "hub-mk2"}, valid_from=0)
        now_molecule = ref.molecule_at(bom["part"],
                                       "Part.contains.Component", 5)
        old_molecule = ref.molecule_at(bom["part"],
                                       "Part.contains.Component", 5,
                                       tt=tt_before - 1)
        names_now = {a.version.values.get("cname")
                     for a in now_molecule.atoms()}
        names_old = {a.version.values.get("cname")
                     for a in old_molecule.atoms()}
        assert "hub-mk2" in names_now
        assert "hub" in names_old and "hub-mk2" not in names_old


class TestHistory:
    def test_history_tracks_membership_changes(self, bom):
        ref = bom["ref"]
        states = ref.molecule_history(bom["part"],
                                      "Part.contains.Component",
                                      Interval(0, 40))
        assert [span.start for span, _ in states] == [0, 10]
        assert states[0][1].atom_count() == 2
        assert states[1][1].atom_count() == 3

    def test_history_tracks_value_changes(self, ref):
        part = ref.insert("Part", {"name": "x", "cost": 1.0}, valid_from=0)
        ref.update(part, {"cost": 2.0}, valid_from=10)
        ref.update(part, {"cost": 3.0}, valid_from=20)
        states = ref.molecule_history(part, "Part", Interval(0, 30))
        assert [m.root.version.values["cost"] for _, m in states] == [
            1.0, 2.0, 3.0]
        assert [str(span) for span, _ in states] == [
            "[0, 10)", "[10, 20)", "[20, 30)"]

    def test_history_with_gap(self, ref):
        part = ref.insert("Part", {"name": "x"}, valid_from=0, valid_to=10)
        ref.insert("Part", {"name": "x"}, valid_from=20, atom_id=part)
        states = ref.molecule_history(part, "Part", Interval(0, 30))
        assert [str(span) for span, _ in states] == ["[0, 10)", "[20, 30)"]

    def test_identical_adjacent_states_coalesce(self, ref):
        part = ref.insert("Part", {"name": "x", "cost": 1.0}, valid_from=0)
        ref.update(part, {"cost": 2.0}, valid_from=10)
        ref.update(part, {"cost": 1.0}, valid_from=20)
        ref.correct(part, 10, 20, {"cost": 1.0})  # undo the middle change
        states = ref.molecule_history(part, "Part", Interval(0, 40))
        assert len(states) == 1
        assert str(states[0][0]) == "[0, 40)"

    def test_child_birth_creates_boundary(self, bom):
        """rim joining at 10 splits the history even though the part's
        own attribute state never changes."""
        ref = bom["ref"]
        states = ref.molecule_history(bom["part"],
                                      "Part.contains.Component",
                                      Interval(5, 15))
        assert len(states) == 2

    def test_window_clamps_spans(self, bom):
        ref = bom["ref"]
        states = ref.molecule_history(bom["part"],
                                      "Part.contains.Component",
                                      Interval(12, 14))
        assert len(states) == 1
        assert str(states[0][0]) == "[12, 14)"

    def test_full_history_reaches_forever(self, ref):
        part = ref.insert("Part", {"name": "x"}, valid_from=3)
        states = ref.molecule_history(part, "Part",
                                      Interval(0, FOREVER))
        assert len(states) == 1
        span, _ = states[0]
        assert span.start == 3 and span.end == FOREVER

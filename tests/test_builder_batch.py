"""Level-at-a-time molecule construction versus the legacy recursion.

The builder was rewritten from per-atom recursive descent to a
breadth-first expansion that issues one batched version fetch per depth
level.  The refactor must be invisible: cycle handling, per-edge depth
budgets, sorted child order, and depth-bound errors all carry over.
``legacy_build_at`` below re-implements the original recursion verbatim
as an in-test oracle so any semantic drift shows up as a composition
mismatch.
"""

from __future__ import annotations

from typing import List, Optional, Set

import pytest

from repro import (
    AtomType,
    Attribute,
    DatabaseConfig,
    DataType,
    LinkType,
    Schema,
    TemporalDatabase,
)
from repro.core.builder import MoleculeBuilder
from repro.core.molecule import Molecule, MoleculeAtom, MoleculeType
from repro.testing import ReferenceDatabase
from repro.workloads import (
    apply_to_database,
    cad_schema,
    generate_bom,
    small_spec,
)


# -- the legacy recursive builder, verbatim, as an oracle -------------------


def legacy_build_at(reader, root_id, mtype, at, tt=None):
    """The pre-batching recursive construction, preserved for comparison."""
    root_version = reader.version_at(root_id, at, tt)
    if root_version is None:
        return None
    budgets = {edge: edge.max_depth for edge in mtype.edges}
    root_atom = _legacy_expand(reader, root_id, mtype.root, root_version,
                               mtype, at, tt, depth=0, budgets=budgets,
                               path=frozenset())
    return Molecule(mtype, root_atom)


def _legacy_expand(reader, atom_id, type_name, version, mtype, at, tt,
                   depth, budgets, path):
    assert depth <= mtype.max_path_length()
    path = path | {atom_id}
    atom = MoleculeAtom(atom_id, type_name, version)
    for edge in mtype.edges_from(type_name):
        children: List[MoleculeAtom] = []
        remaining = budgets.get(edge, edge.max_depth)
        if remaining <= 0:
            atom.children[edge] = children
            continue
        partner_ids = version.refs.get(edge.parent_ref_key, frozenset())
        for child_id in sorted(partner_ids):
            if child_id in path:
                continue
            child_version = reader.version_at(child_id, at, tt)
            if child_version is None:
                continue
            child_budgets = dict(budgets)
            child_budgets[edge] = remaining - 1
            children.append(_legacy_expand(reader, child_id, edge.child,
                                           child_version, mtype, at, tt,
                                           depth + 1, child_budgets, path))
        atom.children[edge] = children
    return atom


def preorder(molecule: Molecule):
    """The (atom_id, type_name) walk, child order included."""
    return [(atom.atom_id, atom.type_name) for atom in molecule.atoms()]


class _UnbatchedReader:
    """A reader proxy without the batch methods: forces the fallback path."""

    def __init__(self, engine) -> None:
        self._engine = engine

    def atom_type_name(self, atom_id: int) -> str:
        return self._engine.atom_type_name(atom_id)

    def version_at(self, atom_id, at, tt=None):
        return self._engine.version_at(atom_id, at, tt)

    def all_versions(self, atom_id):
        return self._engine.all_versions(atom_id)


# -- fixtures ---------------------------------------------------------------


@pytest.fixture
def bom_schema() -> Schema:
    schema = Schema("bom")
    schema.add_atom_type(AtomType("Part", [
        Attribute("name", DataType.STRING, required=True),
    ]))
    schema.add_link_type(LinkType("part_of", "Part", "Part"))
    return schema


@pytest.fixture
def workload_db(tmp_path, strategy):
    """A BOM workload database plus the ids of its Part roots."""
    ops, groups = generate_bom(small_spec(seed=42))
    db = TemporalDatabase.create(
        str(tmp_path / "batchdb"), cad_schema(),
        DatabaseConfig(strategy=strategy, buffer_pages=48))
    ids = apply_to_database(db, ops)
    yield db, [ids[handle] for handle in groups["Part"]]
    db.close()


# -- BFS vs legacy recursion ------------------------------------------------


class TestLegacyEquivalence:
    def test_workload_molecules_match_legacy(self, workload_db):
        db, roots = workload_db
        mtype = MoleculeType.parse(
            "Part.contains.Component.supplied_by.Supplier", db.schema)
        for at in (0, 1, 3, 7):
            for root in roots:
                new = db.builder.build_at(root, mtype, at)
                old = legacy_build_at(db.engine, root, mtype, at)
                assert (new is None) == (old is None), (root, at)
                if new is not None:
                    assert new.same_composition_as(old)
                    assert preorder(new) == preorder(old)

    def test_recursive_type_with_data_cycle(self, tmp_path, strategy,
                                            bom_schema):
        db = TemporalDatabase.create(
            str(tmp_path / "cycledb"), bom_schema,
            DatabaseConfig(strategy=strategy, buffer_pages=32))
        with db.transaction() as txn:
            a = txn.insert("Part", {"name": "a"}, valid_from=0)
            b = txn.insert("Part", {"name": "b"}, valid_from=0)
            c = txn.insert("Part", {"name": "c"}, valid_from=0)
            txn.link("part_of", a, b, valid_from=0)
            txn.link("part_of", b, c, valid_from=0)
            txn.link("part_of", c, a, valid_from=0)  # a → b → c → a
        mtype = MoleculeType.parse("Part.part_of[3].Part", bom_schema)
        for root in (a, b, c):
            new = db.builder.build_at(root, mtype, 5)
            old = legacy_build_at(db.engine, root, mtype, 5)
            assert new.same_composition_as(old)
            assert preorder(new) == preorder(old)
        db.close()

    def test_depth_budget_is_per_path(self, tmp_path, strategy, bom_schema):
        # A chain longer than the bound: expansion stops at the budget.
        db = TemporalDatabase.create(
            str(tmp_path / "chaindb"), bom_schema,
            DatabaseConfig(strategy=strategy, buffer_pages=32))
        with db.transaction() as txn:
            parts = [txn.insert("Part", {"name": f"p{i}"}, valid_from=0)
                     for i in range(6)]
            for parent, child in zip(parts, parts[1:]):
                txn.link("part_of", parent, child, valid_from=0)
        mtype = MoleculeType.parse("Part.part_of[2].Part", bom_schema)
        new = db.builder.build_at(parts[0], mtype, 5)
        old = legacy_build_at(db.engine, parts[0], mtype, 5)
        assert new.atom_count() == 3  # root + two levels, budget exhausted
        assert preorder(new) == preorder(old)
        db.close()

    def test_fallback_reader_builds_identically(self, workload_db):
        db, roots = workload_db
        mtype = MoleculeType.parse("Part.contains.Component", db.schema)
        fallback = MoleculeBuilder(_UnbatchedReader(db.engine), db.metrics)
        for root in roots:
            batched = db.builder.build_at(root, mtype, 3)
            unbatched = fallback.build_at(root, mtype, 3)
            assert (batched is None) == (unbatched is None)
            if batched is not None:
                assert preorder(batched) == preorder(unbatched)

    def test_reference_reader_uses_batch_protocol(self, workload_db):
        db, _ = workload_db
        ref = ReferenceDatabase(cad_schema())
        # The oracle grew version_at_many/all_versions_many; the builder
        # must pick them up via getattr, same as the engine path.
        builder = MoleculeBuilder(ref)
        assert getattr(ref, "version_at_many", None) is not None
        with db.transaction():
            pass  # no-op; just ensures db fixture stays in scope
        assert builder.build_at(999, MoleculeType("Part"), 0) is None


# -- build_many: dedupe, ordering, parallelism ------------------------------


class TestBuildMany:
    def test_duplicate_roots_build_once(self, workload_db):
        db, roots = workload_db
        mtype = MoleculeType.parse("Part.contains.Component", db.schema)
        p1, p2 = roots[0], roots[1]
        before = db.metrics.value("builder.molecules")
        molecules = db.builder.build_many([p1, p2, p1], mtype, 3)
        built = db.metrics.value("builder.molecules") - before
        expected = [m for m in (db.builder.build_at(p1, mtype, 3),
                                db.builder.build_at(p2, mtype, 3))
                    if m is not None]
        assert [m.root.atom_id for m in molecules] == [
            m.root.atom_id for m in expected]
        assert built == len(expected)  # the duplicate was not rebuilt

    def test_first_occurrence_order_wins(self, workload_db):
        db, roots = workload_db
        mtype = MoleculeType.parse("Part.contains.Component", db.schema)
        wanted = [root for root in roots
                  if db.builder.build_at(root, mtype, 3) is not None]
        if len(wanted) < 2:
            pytest.skip("workload left fewer than two live parts")
        shuffled = [wanted[1], wanted[0], wanted[1], wanted[0]]
        molecules = db.builder.build_many(shuffled, mtype, 3)
        assert [m.root.atom_id for m in molecules] == [wanted[1], wanted[0]]

    def test_parallel_matches_serial(self, workload_db):
        db, roots = workload_db
        mtype = MoleculeType.parse(
            "Part.contains.Component.supplied_by.Supplier", db.schema)
        serial = db.builder.build_many(roots, mtype, 3)
        before = db.metrics.value("builder.parallel_builds")
        parallel = db.builder.build_many(roots, mtype, 3, parallelism=4)
        assert db.metrics.value("builder.parallel_builds") == before + 1
        assert [m.root.atom_id for m in parallel] == [
            m.root.atom_id for m in serial]
        for mine, theirs in zip(parallel, serial):
            assert mine.same_composition_as(theirs)
            assert preorder(mine) == preorder(theirs)

    def test_facade_molecules_at_parallel(self, workload_db):
        db, roots = workload_db
        serial = db.molecules_at(roots, "Part.contains.Component", 3)
        parallel = db.molecules_at(roots, "Part.contains.Component", 3,
                                   parallelism=4)
        assert [m.root.atom_id for m in parallel] == [
            m.root.atom_id for m in serial]

    def test_batch_size_histogram_observes(self, workload_db):
        db, roots = workload_db
        mtype = MoleculeType.parse("Part.contains.Component", db.schema)
        db.builder.build_many(roots, mtype, 3)
        snapshot = db.metrics.snapshot()
        batched = [h for h in snapshot["histograms"]
                   if h["name"] == "builder.batch_size"]
        assert batched and batched[0]["count"] > 0


# -- build_history memoization ----------------------------------------------


class TestHistoryMemo:
    def test_memo_on_and_off_agree(self, workload_db):
        from repro.temporal import Interval

        db, roots = workload_db
        mtype = MoleculeType.parse("Part.contains.Component", db.schema)
        window = Interval(0, 10)
        with_memo = [db.builder.build_history(root, mtype, window)
                     for root in roots]
        db.builder.history_memo_enabled = False
        try:
            without = [db.builder.build_history(root, mtype, window)
                       for root in roots]
        finally:
            db.builder.history_memo_enabled = True
        for mine, theirs in zip(with_memo, without):
            assert [str(span) for span, _ in mine] == [
                str(span) for span, _ in theirs]
            for (_, m), (_, t) in zip(mine, theirs):
                assert m.same_composition_as(t)

    def test_memo_cuts_version_scans(self, workload_db):
        from repro.temporal import Interval

        db, roots = workload_db
        mtype = MoleculeType.parse("Part.contains.Component", db.schema)
        window = Interval(0, 10)
        db.builder.history_memo_enabled = False
        try:
            before = db.metrics.value("engine.versions_scanned")
            for root in roots:
                db.builder.build_history(root, mtype, window)
            unmemoized = db.metrics.value("engine.versions_scanned") - before
        finally:
            db.builder.history_memo_enabled = True
        before = db.metrics.value("engine.versions_scanned")
        for root in roots:
            db.builder.build_history(root, mtype, window)
        memoized = db.metrics.value("engine.versions_scanned") - before
        assert memoized <= unmemoized

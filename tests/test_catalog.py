"""Tests for the persistent catalog."""

import json
import os

import pytest

from repro.errors import CatalogError
from repro.storage.catalog import Catalog


@pytest.fixture
def catalog(tmp_path):
    return Catalog(tmp_path / "catalog.json")


class TestPersistence:
    def test_save_load_round_trip(self, catalog, tmp_path):
        catalog.schema = {"name": "s", "atom_types": []}
        catalog.strategy = "separated"
        catalog.segments = {"current": [1, 2, 3]}
        catalog.index_roots = {"type": 9}
        catalog.next_atom_id = 42
        catalog.clock = 17
        catalog.applied_lsn = 5
        catalog.page_size = 4096
        catalog.extras = {"clean_shutdown": True, "nested": {"x": [1]}}
        catalog.save()

        other = Catalog(tmp_path / "catalog.json")
        other.load()
        assert other.schema == catalog.schema
        assert other.strategy == "separated"
        assert other.segments == {"current": [1, 2, 3]}
        assert other.index_roots == {"type": 9}
        assert other.next_atom_id == 42
        assert other.clock == 17
        assert other.applied_lsn == 5
        assert other.page_size == 4096
        assert other.extras["nested"] == {"x": [1]}

    def test_exists(self, catalog):
        assert not catalog.exists()
        catalog.save()
        assert catalog.exists()

    def test_load_missing_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.load()

    def test_load_corrupt_raises(self, catalog, tmp_path):
        (tmp_path / "catalog.json").write_text("{ not json")
        with pytest.raises(CatalogError):
            catalog.load()

    def test_load_wrong_version_raises(self, catalog, tmp_path):
        (tmp_path / "catalog.json").write_text(
            json.dumps({"format_version": 0}))
        with pytest.raises(CatalogError):
            catalog.load()

    def test_atomic_save_leaves_no_temp_files(self, catalog, tmp_path):
        catalog.save()
        catalog.save()
        leftovers = [name for name in os.listdir(tmp_path)
                     if name.endswith(".tmp")]
        assert leftovers == []

    def test_save_overwrites_atomically(self, catalog, tmp_path):
        catalog.next_atom_id = 1
        catalog.save()
        catalog.next_atom_id = 99
        catalog.save()
        other = Catalog(tmp_path / "catalog.json")
        other.load()
        assert other.next_atom_id == 99

    def test_defaults_when_fields_absent(self, tmp_path):
        (tmp_path / "catalog.json").write_text(
            json.dumps({"format_version": 1}))
        catalog = Catalog(tmp_path / "catalog.json")
        catalog.load()
        assert catalog.next_atom_id == 1
        assert catalog.segments == {}
        assert catalog.extras == {}

"""Change-data-capture tests: decoder shapes, commit gating, filters,
durable cursors, restart re-registration, and retention interplay.

Everything here runs in-process against :class:`ChangeStreamSource`
directly — the wire path (opcode 16, client iterator, tail CLI) is
covered by test_server.py additions and the CI smoke job.
"""

import pytest

from repro import DatabaseConfig, TemporalDatabase
from repro.cdc.events import EVENT_KINDS, fold_events
from repro.cdc.source import CDC_EXTRAS_KEY, ChangeStreamSource
from repro.errors import ReplicationError
from repro.temporal import FOREVER


def stream(source, subscriber="probe", **overrides):
    """One full-replay SUBSCRIBE request (from the start of the log)."""
    payload = {"subscriber": subscriber, "from_lsn": 1,
               "max_records": 4096}
    payload.update(overrides)
    return source.handle(payload)


def load_history(db):
    """A small mixed history; returns (part, comp, supplier) atom ids."""
    with db.transaction() as txn:
        part = txn.insert("Part", {"name": "gear", "cost": 5.0},
                          valid_from=0)
        comp = txn.insert("Component", {"cname": "tooth", "weight": 1.0},
                          valid_from=0)
        txn.link("contains", part, comp, valid_from=0)
    with db.transaction() as txn:
        txn.update(part, {"cost": 7.5}, valid_from=10)
    with db.transaction() as txn:
        sup = txn.insert("Supplier", {"sname": "acme"}, valid_from=0)
        txn.link("supplied_by", comp, sup, valid_from=5)
    return part, comp, sup


class TestDecoder:
    def test_insert_decodes_to_atom_created(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "p", "cost": 1.0},
                              valid_from=3)
        body = stream(ChangeStreamSource(db))
        [event] = body["events"]
        assert event["kind"] == "atom_created"
        assert event["atom_id"] == part
        assert event["type"] == "Part"
        assert event["before"] is None
        assert event["after"]["name"] == "p"
        assert event["vt"] == [3, FOREVER]
        assert event["link"] is None and event["src"] is None
        assert isinstance(event["lsn"], int)
        assert isinstance(event["txn_id"], int)

    def test_update_carries_before_and_after(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "p", "cost": 1.0},
                              valid_from=0)
        with db.transaction() as txn:
            txn.update(part, {"cost": 2.0}, valid_from=10)
        body = stream(ChangeStreamSource(db))
        changed = [e for e in body["events"]
                   if e["kind"] == "attribute_changed"]
        [event] = changed
        assert event["before"]["cost"] == 1.0
        assert event["after"]["cost"] == 2.0
        assert event["after"]["name"] == "p"
        assert event["vt"] == [10, FOREVER]

    def test_delete_reports_removed_values(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "p", "cost": 1.0},
                              valid_from=0)
        with db.transaction() as txn:
            txn.delete(part, valid_from=20)
        body = stream(ChangeStreamSource(db))
        [event] = [e for e in body["events"] if e["kind"] == "atom_deleted"]
        assert event["before"]["name"] == "p"
        assert event["after"] is None
        assert event["vt"] == [20, FOREVER]

    def test_link_and_unlink_events(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "p"}, valid_from=0)
            comp = txn.insert("Component", {"cname": "c"}, valid_from=0)
            txn.link("contains", part, comp, valid_from=0)
        with db.transaction() as txn:
            txn.unlink("contains", part, comp, valid_from=30)
        body = stream(ChangeStreamSource(db))
        kinds = [e["kind"] for e in body["events"]]
        assert kinds.count("link_added") == 1
        assert kinds.count("link_removed") == 1
        [added] = [e for e in body["events"] if e["kind"] == "link_added"]
        assert (added["link"], added["src"], added["dst"]) == (
            "contains", part, comp)
        assert added["atom_id"] == part
        assert added["type"] == "Part"

    def test_correction_reports_rewritten_window(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "p", "cost": 1.0},
                              valid_from=0)
        with db.transaction() as txn:
            txn.correct(part, 0, 50, {"cost": 9.0})
        body = stream(ChangeStreamSource(db))
        [event] = [e for e in body["events"]
                   if e["kind"] == "attribute_changed"]
        assert event["vt"] == [0, 50]
        assert event["before"]["cost"] == 1.0
        assert event["after"]["cost"] == 9.0

    def test_events_arrive_in_lsn_order(self, db):
        load_history(db)
        body = stream(ChangeStreamSource(db))
        lsns = [e["lsn"] for e in body["events"]]
        assert lsns == sorted(lsns)
        assert len(set(lsns)) == len(lsns)


class TestCommitGating:
    def test_aborted_transaction_emits_nothing(self, db):
        with db.transaction() as txn:
            keeper = txn.insert("Part", {"name": "keep"}, valid_from=0)
        with pytest.raises(RuntimeError):
            with db.transaction() as txn:
                txn.insert("Part", {"name": "ghost"}, valid_from=0)
                raise RuntimeError("boom")
        body = stream(ChangeStreamSource(db))
        assert [e["atom_id"] for e in body["events"]] == [keeper]
        # The cursor still passes the aborted records: the stream is
        # gated on commit state, not stalled by it.
        assert body["caught_up"]

    def test_in_flight_transaction_is_invisible_until_commit(self, db):
        source = ChangeStreamSource(db)
        context = db.begin()
        context.insert("Part", {"name": "pending"}, valid_from=0)
        db._wal.sync_to(db._wal.next_lsn - 1)  # make them shippable
        body = stream(source)
        assert body["events"] == []
        assert body["bound"] < db._wal.shippable_lsn
        context.commit()
        body = stream(source)
        assert [e["after"]["name"] for e in body["events"]] == ["pending"]


class TestFilters:
    def test_kind_filter(self, db):
        load_history(db)
        body = stream(ChangeStreamSource(db), kinds=["link_added"])
        assert body["events"]
        assert all(e["kind"] == "link_added" for e in body["events"])

    def test_type_filter(self, db):
        load_history(db)
        body = stream(ChangeStreamSource(db), types=["Supplier"])
        assert body["events"]
        assert all(e["type"] == "Supplier" for e in body["events"])

    def test_root_filter_admits_either_link_end(self, db):
        part, comp, sup = load_history(db)
        body = stream(ChangeStreamSource(db), roots=[sup])
        kinds = {e["kind"] for e in body["events"]}
        # sup's creation plus the link where it is only the *target*.
        assert kinds == {"atom_created", "link_added"}
        [link] = [e for e in body["events"] if e["kind"] == "link_added"]
        assert link["dst"] == sup

    def test_unknown_kind_rejected(self, db):
        with pytest.raises(ReplicationError, match="unknown event kinds"):
            stream(ChangeStreamSource(db), kinds=["atom_exploded"])
        assert "atom_exploded" not in EVENT_KINDS

    def test_filtered_events_still_advance_cursor(self, db):
        load_history(db)
        body = stream(ChangeStreamSource(db), types=["NoSuchType"])
        assert body["events"] == []
        assert body["caught_up"]
        assert body["next_from"] == body["bound"] + 1


class TestCursors:
    def test_fresh_subscriber_attaches_at_head(self, db):
        load_history(db)
        source = ChangeStreamSource(db)
        body = source.handle({"subscriber": "late"})
        assert body["events"] == []
        assert body["caught_up"]
        with db.transaction() as txn:
            txn.insert("Part", {"name": "new"}, valid_from=0)
        body = source.handle({"subscriber": "late"})
        assert [e["after"]["name"] for e in body["events"]] == ["new"]

    def test_resume_has_no_gaps_or_duplicates(self, db):
        load_history(db)
        source = ChangeStreamSource(db)
        baseline = [e["lsn"] for e in stream(source, subscriber="ref")
                    ["events"]]
        assert len(baseline) >= 5
        seen = []
        body = stream(source, subscriber="chunked", max_records=2)
        seen.extend(e["lsn"] for e in body["events"])
        while not body["caught_up"] or body["events"]:
            body = source.handle({"subscriber": "chunked",
                                  "from_lsn": body["next_from"],
                                  "ack_lsn": seen[-1] if seen else None,
                                  "max_records": 2})
            if not body["events"]:
                break
            seen.extend(e["lsn"] for e in body["events"])
        assert seen == baseline

    def test_ack_persists_and_drives_resume(self, db):
        load_history(db)
        source = ChangeStreamSource(db)
        body = stream(source, subscriber="worker", max_records=3)
        acked = body["events"][-1]["lsn"]
        source.handle({"subscriber": "worker", "from_lsn": acked + 1,
                       "ack_lsn": acked, "max_records": 1})
        # A brand-new request with no explicit cursor resumes after the
        # persisted ack — not at the head, not at the start.
        resumed = source.handle({"subscriber": "worker"})
        lsns = [e["lsn"] for e in resumed["events"]]
        assert lsns and min(lsns) > acked
        assert CDC_EXTRAS_KEY in db._catalog.extras

    def test_unsubscribe_releases_everything(self, db):
        load_history(db)
        source = ChangeStreamSource(db)
        stream(source, subscriber="quitter", ack_lsn=2)
        assert "quitter" in db._wal.cdc_subscribers()
        body = source.handle({"subscriber": "quitter",
                              "unsubscribe": True})
        assert body["released"]
        assert "quitter" not in db._wal.cdc_subscribers()
        assert "quitter" not in db._catalog.extras.get(CDC_EXTRAS_KEY, {})

    def test_subscriber_name_required(self, db):
        with pytest.raises(ReplicationError, match="subscriber"):
            ChangeStreamSource(db).handle({"from_lsn": 1})


class TestRestart:
    def test_lagging_cursor_survives_clean_restart(self, tmp_path,
                                                   cad_schema, strategy):
        path = str(tmp_path / "cdcdb")
        db = TemporalDatabase.create(path, cad_schema,
                                     DatabaseConfig(strategy=strategy))
        load_history(db)
        source = ChangeStreamSource(db)
        first = stream(source, subscriber="durable", max_records=3)
        acked = first["events"][-1]["lsn"]
        source.handle({"subscriber": "durable", "from_lsn": acked + 1,
                       "ack_lsn": acked, "max_records": 1})
        expect = [e["lsn"] for e in stream(source, subscriber="ref")
                  ["events"] if e["lsn"] > acked]
        db.close()  # truncation refused: the lagging cursor pins the log

        db2 = TemporalDatabase.open(path)
        source2 = ChangeStreamSource(db2)
        registry = db2._wal.cdc_subscribers()
        assert registry["durable"]["acked"] == acked
        resumed = source2.handle({"subscriber": "durable"})
        assert [e["lsn"] for e in resumed["events"]] == expect
        db2.close()

    def test_caught_up_cursor_dropped_across_epoch_reset(self, tmp_path,
                                                         cad_schema,
                                                         strategy):
        path = str(tmp_path / "cdcdb")
        db = TemporalDatabase.create(path, cad_schema,
                                     DatabaseConfig(strategy=strategy))
        load_history(db)
        source = ChangeStreamSource(db)
        body = stream(source, subscriber="done")
        head = body["events"][-1]["lsn"]
        source.handle({"subscriber": "done", "from_lsn": head + 1,
                       "ack_lsn": db._wal.shippable_lsn, "max_records": 1})
        old_epoch = int(db._catalog.extras.get("wal_epoch", 0))
        db.close()  # fully acked: the log truncates and the epoch bumps

        db2 = TemporalDatabase.open(path)
        assert int(db2._catalog.extras["wal_epoch"]) == old_epoch + 1
        source2 = ChangeStreamSource(db2)
        # The persisted cursor named an LSN of the dead epoch; keeping
        # it would strand the subscriber past the restarted head.
        assert db2._wal.cdc_subscribers() == {}
        assert "done" not in db2._catalog.extras.get(CDC_EXTRAS_KEY, {})
        body = source2.handle({"subscriber": "done"})
        assert body["events"] == [] and body["caught_up"]
        assert body["epoch"] == old_epoch + 1
        with db2.transaction() as txn:
            txn.insert("Part", {"name": "fresh"}, valid_from=0)
        body = source2.handle({"subscriber": "done"})
        assert [e["after"]["name"] for e in body["events"]] == ["fresh"]
        db2.close()


class TestRetention:
    def test_lagging_subscriber_blocks_truncation(self, db):
        load_history(db)
        source = ChangeStreamSource(db)
        stream(source, subscriber="slow", ack_lsn=1)
        assert db._wal.truncate() is False
        assert db._wal.held_bytes(1) > 0
        head = db._wal.shippable_lsn
        source.handle({"subscriber": "slow", "from_lsn": head + 1,
                       "ack_lsn": head, "max_records": 1})
        assert db._wal.truncate() is True

    def test_release_unblocks_truncation(self, db):
        load_history(db)
        source = ChangeStreamSource(db)
        stream(source, subscriber="slow", ack_lsn=1)
        assert db._wal.truncate() is False
        source.handle({"subscriber": "slow", "unsubscribe": True})
        assert db._wal.truncate() is True

    def test_status_reports_lag_and_held_bytes(self, db):
        load_history(db)
        source = ChangeStreamSource(db)
        stream(source, subscriber="slow", ack_lsn=1)
        status = source.status()
        assert set(status) == {"head", "epoch", "subscribers",
                               "events_decoded"}
        entry = status["subscribers"]["slow"]
        assert entry["acked"] == 1
        assert entry["lag"] == status["head"] - 1
        assert entry["held_bytes"] > 0
        assert status["events_decoded"] > 0


class TestFold:
    def test_add_remove_pairs_cancel(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "p"}, valid_from=0)
            comp = txn.insert("Component", {"cname": "c"}, valid_from=0)
        t1 = db._clock.now() - 1
        with db.transaction() as txn:
            txn.link("contains", part, comp, valid_from=0)
        with db.transaction() as txn:
            txn.unlink("contains", part, comp, valid_from=0)
        t2 = db._clock.now() - 1
        events = stream(ChangeStreamSource(db))["events"]
        assert fold_events(events, t1, t2) == []

    def test_noop_rewrite_is_not_a_transition(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "p", "cost": 1.0},
                              valid_from=0)
        t1 = db._clock.now() - 1
        with db.transaction() as txn:
            txn.update(part, {"cost": 1.0}, valid_from=0)
        t2 = db._clock.now() - 1
        events = stream(ChangeStreamSource(db))["events"]
        assert fold_events(events, t1, t2) == []

    def test_created_then_deleted_nets_out(self, db):
        t1 = db._clock.now() - 1
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "p"}, valid_from=0)
            comp = txn.insert("Component", {"cname": "c"}, valid_from=0)
            txn.link("contains", part, comp, valid_from=0)
        with db.transaction() as txn:
            txn.delete(part, valid_from=0)
        t2 = db._clock.now() - 1
        events = stream(ChangeStreamSource(db))["events"]
        rows = fold_events(events, t1, t2)
        # part (and its link) vanished; only comp's creation survives.
        assert [r["atom_id"] for r in rows] == [comp]

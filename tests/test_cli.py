"""Tests for the ``python -m repro`` command-line front end."""

import pytest

from repro import TemporalDatabase
from repro.__main__ import main


@pytest.fixture
def populated(tmp_path, cad_schema):
    path = str(tmp_path / "clidb")
    db = TemporalDatabase.create(path, cad_schema)
    with db.transaction() as txn:
        part = txn.insert("Part", {"name": "wheel", "cost": 10.0},
                          valid_from=0)
        hub = txn.insert("Component", {"cname": "hub"}, valid_from=0)
        txn.link("contains", part, hub, valid_from=0)
    with db.transaction() as txn:
        txn.update(part, {"cost": 12.0}, valid_from=10)
    db.close()
    return path, part


class TestCommands:
    def test_info(self, populated, capsys):
        path, _ = populated
        assert main(["info", path]) == 0
        out = capsys.readouterr().out
        assert "strategy" in out
        assert "Part (1 atoms)" in out
        assert "contains: Part -> Component" in out

    def test_query(self, populated, capsys):
        path, _ = populated
        assert main(["query", path,
                     "SELECT Part.cost FROM Part VALID AT 5"]) == 0
        out = capsys.readouterr().out
        assert "Part.cost=10.0" in out
        assert "plan:" in out

    def test_history(self, populated, capsys):
        path, part = populated
        assert main(["history", path, str(part)]) == 0
        out = capsys.readouterr().out
        assert "version records" in out
        assert "superseded" in out and "live" in out
        assert "contains.out" in out

    def test_timeline(self, populated, capsys):
        path, part = populated
        assert main(["timeline", path, str(part)]) == 0
        out = capsys.readouterr().out
        assert "cost=10.0" in out and "cost=12.0" in out

    def test_verify_clean(self, populated, capsys):
        path, _ = populated
        assert main(["verify", path]) == 0
        assert "OK" in capsys.readouterr().out

    def test_vacuum(self, populated, capsys):
        path, _ = populated
        assert main(["vacuum", path, "--before-tt", "100"]) == 0
        out = capsys.readouterr().out
        assert "removed" in out
        # Database still opens and answers after vacuuming.
        assert main(["query", path,
                     "SELECT Part.cost FROM Part VALID AT 15"]) == 0

    def test_error_reporting(self, populated, capsys):
        path, _ = populated
        assert main(["query", path, "SELECT ALL FROM Nothing"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_db_path(self, tmp_path, capsys):
        assert main(["info", str(tmp_path / "missing")]) == 2

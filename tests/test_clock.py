"""Tests for the transaction clock."""

import threading

import pytest

from repro.errors import InvalidTimestampError
from repro.temporal import TransactionClock
from repro.temporal.timestamp import MAX_CHRONON


class TestTicking:
    def test_ticks_are_strictly_increasing(self):
        clock = TransactionClock()
        values = [clock.tick() for _ in range(100)]
        assert values == sorted(set(values))

    def test_now_peeks_without_consuming(self):
        clock = TransactionClock(start=5)
        assert clock.now() == 5
        assert clock.now() == 5
        assert clock.tick() == 5
        assert clock.now() == 6

    def test_custom_start(self):
        clock = TransactionClock(start=100)
        assert clock.tick() == 100

    def test_invalid_start_rejected(self):
        with pytest.raises(InvalidTimestampError):
            TransactionClock(start=MAX_CHRONON + 1)

    def test_exhaustion_raises(self):
        clock = TransactionClock(start=MAX_CHRONON)
        with pytest.raises(InvalidTimestampError):
            clock.tick()


class TestAdvance:
    def test_advance_forward(self):
        clock = TransactionClock()
        clock.tick()
        clock.advance_to(50)
        assert clock.tick() == 50

    def test_advance_backwards_is_noop(self):
        clock = TransactionClock(start=10)
        clock.advance_to(3)
        assert clock.tick() == 10

    def test_advance_invalid_rejected(self):
        clock = TransactionClock()
        with pytest.raises(InvalidTimestampError):
            clock.advance_to(MAX_CHRONON + 10)


def test_concurrent_ticks_are_unique():
    clock = TransactionClock()
    results = []
    lock = threading.Lock()

    def worker():
        mine = [clock.tick() for _ in range(200)]
        with lock:
            results.extend(mine)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(results) == 800
    assert len(set(results)) == 800

"""Tests for the version codec (model objects to store payloads)."""

import pytest

from repro.core.codec import VersionCodec
from repro.core.version import Version
from repro.errors import SerializationError
from repro.temporal import FOREVER, Interval


@pytest.fixture
def codec(cad_schema):
    return VersionCodec(cad_schema)


def make_version(values=None, refs=None, vt=(0, 10), tt=(3, FOREVER)):
    return Version(Interval(*vt), Interval(*tt), values or {}, refs or {})


class TestRoundTrip:
    def test_values_and_times(self, codec):
        version = make_version({"name": "wheel", "cost": 2.5,
                                "released": True})
        stored = codec.encode("Part", version)
        assert stored.vt_start == 0 and stored.vt_end == 10
        assert stored.live
        decoded = codec.decode("Part", stored)
        assert decoded == version

    def test_closed_version_not_live(self, codec):
        version = make_version(tt=(1, 7))
        stored = codec.encode("Part", version)
        assert not stored.live
        assert codec.decode("Part", stored).tt == Interval(1, 7)

    def test_refs_round_trip(self, codec):
        version = make_version(
            {"name": "x"},
            {"contains.out": frozenset({9, 3, 7})})
        decoded = codec.decode("Part", codec.encode("Part", version))
        assert decoded.refs["contains.out"] == frozenset({3, 7, 9})

    def test_in_refs(self, codec):
        version = make_version({"cname": "hub"},
                               {"contains.in": frozenset({1}),
                                "supplied_by.out": frozenset({5})})
        decoded = codec.decode("Component", codec.encode("Component",
                                                         version))
        assert decoded.refs == {"contains.in": frozenset({1}),
                                "supplied_by.out": frozenset({5})}

    def test_null_values(self, codec):
        version = make_version({"name": "x", "cost": None,
                                "released": None})
        decoded = codec.decode("Part", codec.encode("Part", version))
        assert decoded.values["cost"] is None

    def test_empty_refs_dropped(self, codec):
        version = make_version({"name": "x"},
                               {"contains.out": frozenset()})
        decoded = codec.decode("Part", codec.encode("Part", version))
        assert decoded.refs == {}


class TestRefKeys:
    def test_part_ref_keys(self, codec):
        assert codec.ref_keys("Part") == ["contains.out"]

    def test_component_has_both_directions(self, codec):
        assert set(codec.ref_keys("Component")) == {"contains.in",
                                                    "supplied_by.out"}

    def test_supplier_only_in(self, codec):
        assert codec.ref_keys("Supplier") == ["supplied_by.in"]


class TestErrors:
    def test_unknown_type_rejected(self, codec):
        with pytest.raises(SerializationError):
            codec.encode("Mystery", make_version())
        with pytest.raises(SerializationError):
            codec.decode("Mystery", codec.encode("Part", make_version(
                {"name": "x"})))

    def test_self_link_schema(self):
        from repro import AtomType, Attribute, DataType, LinkType, Schema
        schema = Schema("s")
        schema.add_atom_type(AtomType("Part", [
            Attribute("name", DataType.STRING)]))
        schema.add_link_type(LinkType("part_of", "Part", "Part"))
        codec = VersionCodec(schema)
        assert set(codec.ref_keys("Part")) == {"part_of.out", "part_of.in"}
        version = make_version({"name": "x"},
                               {"part_of.out": frozenset({2}),
                                "part_of.in": frozenset({3})})
        decoded = codec.decode("Part", codec.encode("Part", version))
        assert decoded.refs == {"part_of.out": frozenset({2}),
                                "part_of.in": frozenset({3})}

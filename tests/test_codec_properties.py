"""Property-based codec tests: round-trips over generated schemas."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AtomType, Attribute, DataType, LinkType, Schema
from repro.core.codec import VersionCodec
from repro.core.version import Version
from repro.temporal import FOREVER, Interval

_DATATYPES = list(DataType)


@st.composite
def schemas(draw):
    """A random schema of 1-3 atom types with random attributes/links."""
    schema = Schema("prop")
    type_count = draw(st.integers(1, 3))
    names = [f"T{i}" for i in range(type_count)]
    for name in names:
        attr_count = draw(st.integers(0, 5))
        attributes = [
            Attribute(f"a{i}", draw(st.sampled_from(_DATATYPES)))
            for i in range(attr_count)
        ]
        schema.add_atom_type(AtomType(name, attributes))
    link_count = draw(st.integers(0, 3))
    for index in range(link_count):
        schema.add_link_type(LinkType(
            f"l{index}", draw(st.sampled_from(names)),
            draw(st.sampled_from(names))))
    return schema


def _value_strategy(data_type):
    if data_type in (DataType.INT, DataType.TIME):
        return st.integers(min_value=-(2**62), max_value=2**62)
    if data_type is DataType.FLOAT:
        return st.floats(allow_nan=False, allow_infinity=False, width=64)
    if data_type is DataType.STRING:
        return st.text(max_size=30)
    return st.booleans()


@st.composite
def versions_for(draw, schema, type_name):
    atom_type = schema.atom_type(type_name)
    codec_keys = VersionCodec(schema).ref_keys(type_name)
    values = {}
    for attribute in atom_type.attributes:
        if draw(st.booleans()):
            values[attribute.name] = draw(
                _value_strategy(attribute.data_type))
        else:
            values[attribute.name] = None
    refs = {}
    for key in codec_keys:
        partners = draw(st.frozensets(
            st.integers(min_value=1, max_value=10**9), max_size=5))
        if partners:
            refs[key] = partners
    vt_start = draw(st.integers(-1000, 1000))
    vt_end = draw(st.integers(vt_start + 1, 2000))
    tt_start = draw(st.integers(0, 1000))
    tt_end = draw(st.one_of(st.just(FOREVER),
                            st.integers(tt_start + 1, 2000)))
    return Version(Interval(vt_start, vt_end), Interval(tt_start, tt_end),
                   values, refs)


@settings(max_examples=80, deadline=None)
@given(st.data())
def test_codec_round_trips_any_schema(data):
    schema = data.draw(schemas())
    codec = VersionCodec(schema)
    type_name = data.draw(st.sampled_from(
        [atom_type.name for atom_type in schema.atom_types]))
    version = data.draw(versions_for(schema, type_name))
    stored = codec.encode(type_name, version)
    decoded = codec.decode(type_name, stored)
    assert decoded == version
    assert stored.live == version.live
    assert (stored.vt_start, stored.vt_end) == (version.vt.start,
                                                version.vt.end)


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_codec_through_engine_prefix(tmp_path_factory, data):
    """The engine's type-prefixed payload round-trips as well."""
    from repro import DatabaseConfig, TemporalDatabase

    schema = data.draw(schemas())
    type_name = data.draw(st.sampled_from(
        [atom_type.name for atom_type in schema.atom_types]))
    version = data.draw(versions_for(schema, type_name))
    path = tmp_path_factory.mktemp("codecprop")
    db = TemporalDatabase.create(str(path / "db"), schema)
    stored = db.engine._encode(type_name, version)
    got_type, decoded = db.engine._decode(stored)
    assert got_type == type_name
    assert decoded == version
    db.close()

"""Multi-threaded stress tests: shared readers, group commit, and
differential snapshot consistency.

The facade's shared-read / exclusive-write latch must let many reader
threads run time-slice and history queries in parallel while writers
revise atoms, and the WAL's group commit must amortize fsyncs across
concurrently committing transactions.  The differential tests compare
every concurrent read against the in-memory reference oracle at a
transaction time that is known to be committed — a torn molecule (a
reader observing half of a multi-operation revision at its own tt, or a
half-applied operation) would disagree with the oracle.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro import DatabaseConfig, TemporalDatabase
from repro.errors import SerializationConflictError
from repro.testing import ReferenceDatabase
from repro.txn.locks import ReadWriteLock

JOIN_TIMEOUT = 120.0  # generous; CI enforces an overall job timeout


def _start(threads):
    for thread in threads:
        thread.start()


def _join_all(threads):
    """Join with a deadline so a deadlock fails the test, not CI."""
    for thread in threads:
        thread.join(JOIN_TIMEOUT)
    stuck = [t.name for t in threads if t.is_alive()]
    assert not stuck, f"threads deadlocked or overran: {stuck}"


def _seed(db, parts=6, components_per_part=3):
    """Insert a small BOM: parts with linked components, plus updates."""
    ids = {}
    with db.transaction() as txn:
        for p in range(parts):
            part = txn.insert("Part", {"name": f"part-{p}", "cost": 1.0},
                              valid_from=0)
            comps = []
            for c in range(components_per_part):
                comp = txn.insert("Component",
                                  {"cname": f"c-{p}-{c}",
                                   "weight": float(c)}, valid_from=0)
                txn.link("contains", part, comp, valid_from=0)
                comps.append(comp)
            ids[part] = comps
    with db.transaction() as txn:
        for part in ids:
            txn.update(part, {"cost": 2.0}, valid_from=20)
    return ids


class TestReadWriteLock:
    def test_reentrant_read_and_write(self):
        latch = ReadWriteLock()
        with latch.read():
            with latch.read():
                pass
        with latch.write():
            with latch.write():
                pass
            with latch.read():  # nested read inside a write is a no-op
                pass

    def test_upgrade_raises(self):
        latch = ReadWriteLock()
        with latch.read():
            with pytest.raises(RuntimeError):
                latch.acquire_write()

    def test_writer_excludes_readers(self):
        latch = ReadWriteLock()
        order = []
        latch.acquire_write()
        reader = threading.Thread(
            target=lambda: (latch.acquire_read(), order.append("read"),
                            latch.release_read()))
        reader.start()
        time.sleep(0.05)
        order.append("write-release")
        latch.release_write()
        reader.join(JOIN_TIMEOUT)
        assert order == ["write-release", "read"]

    def test_parallel_readers_overlap(self):
        latch = ReadWriteLock()
        inside = threading.Barrier(4, timeout=JOIN_TIMEOUT)

        def reader():
            with latch.read():
                inside.wait()  # only passes if all 4 hold the lock at once

        threads = [threading.Thread(target=reader, name=f"r{i}")
                   for i in range(4)]
        _start(threads)
        _join_all(threads)


class TestParallelReaders:
    def test_eight_thread_time_slice_workload(self, tmp_path, cad_schema,
                                              strategy):
        """8 read-only threads: no conflicts, no deadlock, no errors."""
        db = TemporalDatabase.create(
            str(tmp_path / "db"), cad_schema,
            DatabaseConfig(strategy=strategy, buffer_pages=64))
        ids = _seed(db)
        parts = list(ids)
        errors = []

        def reader(seed):
            try:
                for i in range(30):
                    part = parts[(seed + i) % len(parts)]
                    at = (seed * 7 + i) % 40
                    molecule = db.molecule_at(
                        part, "Part.contains.Component", at)
                    if molecule is not None:
                        assert molecule.atom_count() >= 1
                    db.version_at(part, at)
                    result = db.query(
                        f"SELECT ALL FROM Part VALID AT {at}")
                    assert result is not None
            except SerializationConflictError as exc:  # must never happen
                errors.append(("serialization", exc))
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append((type(exc).__name__, exc))

        threads = [threading.Thread(target=reader, args=(i,), name=f"r{i}")
                   for i in range(8)]
        _start(threads)
        _join_all(threads)
        assert errors == []
        db.close()


class TestDifferentialUnderConcurrency:
    def test_readers_match_oracle_during_revisions(self, tmp_path,
                                                   cad_schema, strategy):
        """Concurrent AS OF reads agree with the oracle at committed tts.

        Runs for every version-storage strategy.  The writer revises
        parts (updates plus link churn) while readers time-slice the
        same molecules as believed at already-committed transaction
        times; any torn molecule or half-applied revision shows up as a
        composition mismatch against the reference database.
        """
        db = TemporalDatabase.create(
            str(tmp_path / "db"), cad_schema,
            DatabaseConfig(strategy=strategy, buffer_pages=64))
        ref = ReferenceDatabase(cad_schema)
        oracle_lock = threading.Lock()
        committed_tts = []

        # Seed both sides identically (shared ids via explicit atom_id).
        part_ids, comp_ids = [], []
        with db.transaction() as txn:
            tt0 = txn.transaction_time
            for p in range(4):
                part = txn.insert("Part", {"name": f"p{p}", "cost": 1.0},
                                  valid_from=0)
                part_ids.append(part)
                for c in range(3):
                    comp = txn.insert(
                        "Component",
                        {"cname": f"c{p}-{c}", "weight": 1.0}, valid_from=0)
                    txn.link("contains", part, comp, valid_from=0)
                    comp_ids.append((part, comp))
        with oracle_lock:
            for part in part_ids:
                ref.insert("Part", {"name": f"p{part_ids.index(part)}",
                                    "cost": 1.0}, 0, tt=tt0, atom_id=part)
            for part, comp in comp_ids:
                index = comp_ids.index((part, comp))
                ref.insert("Component",
                           {"cname": f"c{part_ids.index(part)}-{index % 3}",
                            "weight": 1.0}, 0, tt=tt0, atom_id=comp)
                ref.link("contains", part, comp, 0, tt=tt0)
            committed_tts.append(tt0)

        stop = threading.Event()
        errors = []

        def writer():
            try:
                for round_no in range(24):
                    part = part_ids[round_no % len(part_ids)]
                    cost = float(round_no + 10)
                    vf = 5 + (round_no % 6) * 5
                    with db.transaction() as txn:
                        tt = txn.transaction_time
                        txn.update(part, {"cost": cost}, valid_from=vf)
                    with oracle_lock:
                        ref.update(part, {"cost": cost}, vf, tt=tt)
                        committed_tts.append(tt)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(("writer", type(exc).__name__, exc))
            finally:
                stop.set()

        def reader(seed):
            try:
                rounds = 0
                while not (stop.is_set() and rounds > 10):
                    rounds += 1
                    with oracle_lock:
                        tt = committed_tts[
                            (seed * 13 + rounds) % len(committed_tts)]
                    part = part_ids[(seed + rounds) % len(part_ids)]
                    at = (seed * 7 + rounds * 3) % 45
                    mine = db.molecule_at(part, "Part.contains.Component",
                                          at, tt=tt)
                    with oracle_lock:
                        theirs = ref.molecule_at(
                            part, "Part.contains.Component", at, tt=tt)
                    assert (mine is None) == (theirs is None), \
                        (part, at, tt)
                    if mine is not None:
                        assert mine.same_composition_as(theirs), \
                            (part, at, tt)
                    if rounds > 400:  # bound the loop even if stop lags
                        break
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append((f"reader-{seed}", type(exc).__name__, exc))

        threads = [threading.Thread(target=writer, name="writer")]
        threads += [threading.Thread(target=reader, args=(i,),
                                     name=f"reader-{i}") for i in range(4)]
        _start(threads)
        _join_all(threads)
        assert errors == []
        db.close()


class TestGroupCommit:
    def test_concurrent_commits_share_fsyncs(self, tmp_path, cad_schema,
                                             monkeypatch):
        """8 writer threads commit concurrently; fsyncs stay below commits."""
        import repro.txn.wal as wal_module
        real_fsync = os.fsync

        def slow_fsync(fd):
            real_fsync(fd)
            time.sleep(0.01)  # model a real disk so committers pile up

        monkeypatch.setattr(wal_module.os, "fsync", slow_fsync)
        db = TemporalDatabase.create(str(tmp_path / "db"), cad_schema,
                                     DatabaseConfig(buffer_pages=64))
        db.metrics.reset("wal.")
        db.metrics.reset("txn.")
        commits_per_thread = 8
        errors = []

        def writer(seed):
            try:
                for i in range(commits_per_thread):
                    with db.transaction() as txn:
                        txn.insert("Part",
                                   {"name": f"w{seed}-{i}", "cost": 1.0},
                                   valid_from=0)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append((seed, exc))

        threads = [threading.Thread(target=writer, args=(i,), name=f"w{i}")
                   for i in range(8)]
        _start(threads)
        _join_all(threads)
        assert errors == []

        total_commits = 8 * commits_per_thread
        fsyncs = db.metrics.value("wal.fsyncs")
        group_rounds = db.metrics.value("wal.group_commits")
        assert fsyncs < total_commits, (fsyncs, total_commits)
        assert 0 < group_rounds <= fsyncs
        # Every commit is durable exactly once: the batch sizes observed
        # across all fsync rounds must add up to the commit count.
        histogram = db.metrics.histogram("wal.commit_batch_size")
        assert histogram.total == total_commits
        assert histogram.maximum >= 2  # at least one real group formed
        # All 64 inserts are present.
        assert len(db.atoms_of_type("Part")) == total_commits
        db.close()

    def test_commit_returns_durable(self, tmp_path, cad_schema):
        """After commit() returns, the COMMIT record's LSN is durable."""
        db = TemporalDatabase.create(str(tmp_path / "db"), cad_schema,
                                     DatabaseConfig(buffer_pages=16))
        with db.transaction() as txn:
            txn.insert("Part", {"name": "d"}, valid_from=0)
        assert db._wal.durable_lsn == db._wal.next_lsn - 1
        db.close()

    def test_durability_none_skips_fsyncs(self, tmp_path, cad_schema):
        db = TemporalDatabase.create(
            str(tmp_path / "db"), cad_schema,
            DatabaseConfig(buffer_pages=16, durability="none"))
        before = db.metrics.value("wal.fsyncs")
        for i in range(5):
            with db.transaction() as txn:
                txn.insert("Part", {"name": f"n{i}"}, valid_from=0)
        assert db.metrics.value("wal.fsyncs") == before
        db.close()


class TestMixedWorkloadLiveness:
    def test_disjoint_writers_and_readers_complete(self, tmp_path,
                                                   cad_schema):
        """Writers on disjoint atoms plus readers: everything terminates."""
        db = TemporalDatabase.create(str(tmp_path / "db"), cad_schema,
                                     DatabaseConfig(buffer_pages=64))
        ids = _seed(db, parts=8)
        parts = list(ids)
        errors = []
        stop = threading.Event()

        def writer(index):
            try:
                part = parts[index]  # each writer owns one part
                for i in range(12):
                    with db.transaction() as txn:
                        txn.update(part, {"cost": float(i)},
                                   valid_from=30 + i)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(("writer", index, exc))

        def reader(seed):
            try:
                i = 0
                while not stop.is_set() and i < 500:
                    i += 1
                    part = parts[(seed + i) % len(parts)]
                    db.molecule_at(part, "Part.contains.Component",
                                   (seed + i) % 50)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(("reader", seed, exc))

        writers = [threading.Thread(target=writer, args=(i,), name=f"w{i}")
                   for i in range(4)]
        readers = [threading.Thread(target=reader, args=(i,), name=f"r{i}")
                   for i in range(4)]
        _start(writers + readers)
        _join_all(writers)
        stop.set()
        _join_all(readers)
        assert errors == []
        db.close()

"""Crash-fault-injection harness: real ``kill -9`` plus byte-level
torn-write simulations.

Three layers of crash realism, in decreasing order of fidelity:

1. **Process kill**: a child process commits transactions and prints an
   acknowledgement *after* each commit returns; the parent SIGKILLs it
   mid-stream and reopens the database.  Under the default ``sync``
   durability every acknowledged commit must be recovered; under
   ``durability="none"`` the same workload demonstrably loses
   acknowledged commits (the records never leave the process buffer).
2. **Machine crash to the fsynced prefix**: the WAL file is truncated to
   the size it had at the last ``fsync`` (recorded by instrumenting
   ``os.fsync``), modelling power loss where the OS page cache vanishes.
   Because commits acknowledge only after fsync, recovery must land
   exactly on the acknowledged prefix.
3. **Torn tail**: the WAL is cut at arbitrary byte offsets; recovery
   must come up at exactly the longest wholly-committed prefix, never
   half a transaction and never an error.

Plus mid-checkpoint crash coverage: staged-but-unpublished checkpoint
generations and stale temp files must be ignored in favour of the last
published manifest generation.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro import DatabaseConfig, TemporalDatabase
from repro.txn.recovery import (
    MANIFEST_FILE,
    publish_checkpoint,
    read_manifest,
)

# -- layer 1: real SIGKILL against a child process ---------------------------------

CHILD_SCRIPT = textwrap.dedent("""\
    import sys

    from repro import (AtomType, Attribute, DataType, DatabaseConfig,
                       Schema, TemporalDatabase)

    path, durability = sys.argv[1], sys.argv[2]
    schema = Schema("crash")
    schema.add_atom_type(AtomType("Part", [
        Attribute("name", DataType.STRING, required=True)]))
    db = TemporalDatabase.create(
        path, schema, DatabaseConfig(buffer_pages=16, durability=durability))
    for i in range(1000):
        with db.transaction() as txn:
            atom = txn.insert("Part", {"name": f"part-{i}"}, valid_from=0)
        # The commit above has returned: under sync durability this line
        # is only reached once the COMMIT record is on stable storage.
        sys.stdout.write(f"ACK {atom}\\n")
        sys.stdout.flush()
    """)


def _run_child_until_kill(tmp_path, durability, acks_before_kill=6):
    """Start the committing child, SIGKILL it after N acks, return acks."""
    db_path = str(tmp_path / "killdb")
    script = tmp_path / "child.py"
    script.write_text(CHILD_SCRIPT)
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    child = subprocess.Popen(
        [sys.executable, str(script), db_path, durability],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True)
    acked = []
    try:
        assert child.stdout is not None
        for line in child.stdout:
            if line.startswith("ACK "):
                acked.append(int(line.split()[1]))
            if len(acked) >= acks_before_kill:
                break
        else:  # child exited early: surface its stderr
            pytest.fail(f"child exited: {child.stderr.read()}")
        child.kill()  # SIGKILL: no atexit, no flush, no close
        child.wait(timeout=30)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(timeout=30)
    assert child.returncode == -signal.SIGKILL
    return db_path, acked


class TestProcessKill:
    def test_default_durability_recovers_every_acked_commit(self, tmp_path):
        db_path, acked = _run_child_until_kill(tmp_path, "sync")
        assert len(acked) >= 6
        recovered = TemporalDatabase.open(db_path)
        try:
            survivors = set(recovered.atoms_of_type("Part"))
            missing = [a for a in acked if a not in survivors]
            assert missing == [], \
                f"acknowledged commits lost under sync durability: {missing}"
            for atom in acked:
                assert recovered.version_at(atom, 0) is not None
        finally:
            recovered.close()

    def test_durability_none_loses_acked_commits(self, tmp_path):
        """The opt-out really is unsafe: acked commits vanish on kill -9.

        With ``durability="none"`` commit records stay in the process
        stdio buffer, so a SIGKILL after the ack deterministically
        drops them — this is the regression test for the old silent
        ``sync_commits=False`` default.
        """
        db_path, acked = _run_child_until_kill(tmp_path, "none")
        assert len(acked) >= 6
        recovered = TemporalDatabase.open(db_path)
        try:
            survivors = set(recovered.atoms_of_type("Part"))
            lost = [a for a in acked if a not in survivors]
            assert lost, ("durability='none' lost nothing; the crash "
                          "demonstration is no longer meaningful")
        finally:
            recovered.close()


# -- layers 2+3: byte-level WAL surgery --------------------------------------------

def _build_committed_sequence(tmp_path, cad_schema, *, group_commit=True):
    """Commit a chain of updates, recording the WAL size after each commit.

    Returns ``(path, part_id, sizes)`` where ``sizes[i]`` is the WAL
    byte length that made commit ``i`` durable (commit ``i`` sets
    ``cost`` to ``float(i)``).
    """
    path = str(tmp_path / "sweepdb")
    db = TemporalDatabase.create(
        path, cad_schema,
        DatabaseConfig(buffer_pages=32, group_commit=group_commit))
    sizes = []
    with db.transaction() as txn:
        part = txn.insert("Part", {"name": "sweep", "cost": 0.0},
                          valid_from=0)
    sizes.append(db._wal._file.tell())
    for i in range(1, 6):
        with db.transaction() as txn:
            txn.update(part, {"cost": float(i)}, valid_from=0)
        sizes.append(db._wal._file.tell())
    # Crash: abandon the object; commits already fsynced the WAL.
    db._disk._file.flush()
    return path, part, sizes


def _highest_committed(sizes, truncated_to):
    """Index of the newest commit wholly contained in the truncated WAL."""
    best = -1
    for index, size in enumerate(sizes):
        if size <= truncated_to:
            best = index
    return best


class TestTornTailSweep:
    def test_recovery_lands_on_exact_committed_prefix(self, tmp_path,
                                                      cad_schema):
        import shutil
        path, part, sizes = _build_committed_sequence(tmp_path, cad_schema)
        raw = open(os.path.join(path, "wal.log"), "rb").read()
        assert len(raw) == sizes[-1]
        # Sweep cut points across the whole log: every commit boundary,
        # plus tears strictly inside records around each boundary.  Each
        # cut recovers a pristine copy of the crash image, because
        # opening (and closing) a database rewrites its files.
        cuts = set(sizes)
        for size in sizes:
            cuts.update({size - 3, size + 3, size - 11})
        cuts = sorted(c for c in cuts if sizes[0] <= c <= len(raw))
        for cut in cuts:
            copy = str(tmp_path / f"cut-{cut}")
            shutil.copytree(path, copy)
            with open(os.path.join(copy, "wal.log"), "wb") as handle:
                handle.write(raw[:cut])
            db = TemporalDatabase.open(copy)
            try:
                expected = _highest_committed(sizes, cut)
                assert expected >= 0  # first commit is always inside
                version = db.version_at(part, 0)
                assert version is not None
                assert version.values["cost"] == float(expected), \
                    f"cut at {cut}: wanted commit {expected}"
            finally:
                db.close()
                shutil.rmtree(copy, ignore_errors=True)

    def test_scribbled_tail_is_discarded(self, tmp_path, cad_schema):
        """Garbage bytes past the last commit do not break recovery."""
        path, part, sizes = _build_committed_sequence(tmp_path, cad_schema)
        wal_path = os.path.join(path, "wal.log")
        with open(wal_path, "ab") as handle:
            handle.write(b"\x7f" * 37)  # torn write of a never-synced txn
        db = TemporalDatabase.open(path)
        try:
            assert db.version_at(part, 0).values["cost"] == float(
                len(sizes) - 1)
        finally:
            db.close()


class TestMachineCrashToFsyncedPrefix:
    def test_acked_commits_inside_fsynced_prefix(self, tmp_path, cad_schema,
                                                 monkeypatch):
        """Power-loss model: the disk keeps only what fsync covered.

        ``os.fsync`` is instrumented to record the WAL length each time
        the WAL module calls it; after a simulated power cut back to the
        *last* fsynced length, every commit that acknowledged must be
        recovered (commits acknowledge only after their covering fsync).
        """
        import repro.txn.wal as wal_module
        real_fsync = os.fsync
        fsynced_sizes = []

        def recording_fsync(fd):
            real_fsync(fd)
            fsynced_sizes.append(os.fstat(fd).st_size)

        monkeypatch.setattr(wal_module.os, "fsync", recording_fsync)
        path, part, sizes = _build_committed_sequence(tmp_path, cad_schema)
        assert fsynced_sizes, "no fsync recorded despite sync durability"
        durable_size = fsynced_sizes[-1]
        assert durable_size >= sizes[-1], \
            "a commit acknowledged before its bytes were fsynced"
        wal_path = os.path.join(path, "wal.log")
        raw = open(wal_path, "rb").read()
        with open(wal_path, "wb") as handle:
            handle.write(raw[:durable_size])
        db = TemporalDatabase.open(path)
        try:
            assert db.version_at(part, 0).values["cost"] == float(
                len(sizes) - 1)
        finally:
            db.close()


# -- mid-checkpoint crashes --------------------------------------------------------

def _checkpoint_paths(path):
    return [os.path.join(path, "pages.db"), os.path.join(path, "catalog.json")]


class TestMidCheckpointCrash:
    def _make(self, tmp_path, cad_schema):
        path = str(tmp_path / "ckptdb")
        db = TemporalDatabase.create(path, cad_schema,
                                     DatabaseConfig(buffer_pages=32))
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "ckpt", "cost": 1.0},
                              valid_from=0)
        db.checkpoint()
        with db.transaction() as txn:
            txn.update(part, {"cost": 2.0}, valid_from=0)
        return path, part, db

    def test_staged_but_unpublished_generation_ignored(self, tmp_path,
                                                       cad_schema):
        """Crash after staging the page copy but before the manifest rename."""
        path, part, db = self._make(tmp_path, cad_schema)
        manifest = read_manifest(path)
        next_gen = manifest["generation"] + 1
        # Simulate the partial publish: one staged file of the next
        # generation exists, the manifest still names the old one.
        pages = _checkpoint_paths(path)[0]
        db.buffer.flush_all()
        db._disk._file.flush()
        import shutil
        shutil.copyfile(pages, f"{pages}.ckpt.{next_gen}")
        db._wal._file.flush()
        recovered = TemporalDatabase.open(path)
        try:
            # Restored from the published generation (so the post-checkpoint
            # update replays exactly once), not from the orphaned staged copy.
            assert recovered.version_at(part, 0).values["cost"] == 2.0
            assert read_manifest(path)["generation"] > manifest["generation"]
        finally:
            recovered.close()
        # The orphaned staged file is swept by the recovery checkpoint.
        assert not os.path.exists(f"{pages}.ckpt.{next_gen}")

    def test_stale_tmp_files_ignored_and_cleaned(self, tmp_path, cad_schema):
        """Crash mid-copy leaves ``.tmp`` litter; recovery shrugs it off."""
        path, part, db = self._make(tmp_path, cad_schema)
        gen = read_manifest(path)["generation"]
        litter = os.path.join(path, f"pages.db.ckpt.{gen + 1}.tmp")
        with open(litter, "wb") as handle:
            handle.write(b"\x00" * 64)  # half-copied page snapshot
        db._wal._file.flush()
        recovered = TemporalDatabase.open(path)
        try:
            assert recovered.version_at(part, 0).values["cost"] == 2.0
        finally:
            recovered.close()
        # The next successful checkpoint sweeps stale generations away.
        assert not os.path.exists(litter)

    def test_torn_manifest_tmp_never_current(self, tmp_path, cad_schema):
        """A torn manifest ``.tmp`` must not shadow the published manifest."""
        path, part, db = self._make(tmp_path, cad_schema)
        torn = os.path.join(path, MANIFEST_FILE + ".tmp")
        with open(torn, "w", encoding="utf-8") as handle:
            handle.write('{"generation": 99, "files"')  # cut mid-write
        db._wal._file.flush()
        recovered = TemporalDatabase.open(path)
        try:
            assert recovered.version_at(part, 0).values["cost"] == 2.0
        finally:
            recovered.close()

    def test_publish_checkpoint_generations_advance(self, tmp_path,
                                                    cad_schema):
        path, part, db = self._make(tmp_path, cad_schema)
        first = read_manifest(path)["generation"]
        db.checkpoint()
        second = read_manifest(path)["generation"]
        assert second == first + 1
        files = read_manifest(path)["files"]
        assert set(files) == {"pages.db", "catalog.json"}
        for staged in files.values():
            assert os.path.exists(os.path.join(path, staged))
        # Superseded generation files were cleaned up.
        assert not os.path.exists(
            os.path.join(path, f"pages.db.ckpt.{first}"))
        db.close()

    def test_legacy_checkpoint_without_manifest_still_restores(
            self, tmp_path, cad_schema):
        """Pre-manifest databases (bare ``.ckpt`` twins) remain openable."""
        path = str(tmp_path / "legacydb")
        db = TemporalDatabase.create(path, cad_schema,
                                     DatabaseConfig(buffer_pages=32))
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "old", "cost": 7.0},
                              valid_from=0)
        db.checkpoint()
        db._wal._file.flush()
        db._disk._file.flush()
        # Rewrite the checkpoint in the legacy single-file layout.
        manifest = read_manifest(path)
        import shutil
        for base, staged in manifest["files"].items():
            shutil.copyfile(os.path.join(path, staged),
                            os.path.join(path, base + ".ckpt"))
        os.remove(os.path.join(path, MANIFEST_FILE))
        recovered = TemporalDatabase.open(path)
        try:
            assert recovered.version_at(part, 0).values["cost"] == 7.0
        finally:
            recovered.close()

"""Tests for the database facade: transactions, DML, persistence.

The ``db`` fixture parametrizes every test over all three storage
strategies.
"""

import time

import pytest

from repro import DatabaseConfig, TemporalDatabase, VersionStrategy
from repro.errors import (
    CardinalityError,
    CatalogError,
    StorageError,
    TemporalUpdateError,
    TransactionStateError,
    TypeMismatchError,
    UnknownAtomError,
)
from repro.temporal import FOREVER, Interval


class TestTransactions:
    def test_context_manager_commits(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "x"}, valid_from=0)
        assert db.version_at(part, 0) is not None

    def test_exception_aborts(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "keep"}, valid_from=0)
        with pytest.raises(RuntimeError):
            with db.transaction() as txn:
                txn.update(part, {"name": "changed"}, valid_from=5)
                txn.insert("Part", {"name": "doomed"}, valid_from=0)
                raise RuntimeError("boom")
        assert db.version_at(part, 10).values["name"] == "keep"
        assert len(db.atoms_of_type("Part")) == 1

    def test_explicit_begin_commit(self, db):
        txn = db.begin()
        part = txn.insert("Part", {"name": "x"}, valid_from=0)
        txn.commit()
        assert db.version_at(part, 0) is not None

    def test_explicit_abort_undoes_everything(self, db):
        txn = db.begin()
        part = txn.insert("Part", {"name": "x"}, valid_from=0)
        hub = txn.insert("Component", {"cname": "hub"}, valid_from=0)
        txn.link("contains", part, hub, valid_from=0)
        txn.update(part, {"name": "y"}, valid_from=5)
        txn.abort()
        assert db.atoms_of_type("Part") == []
        assert db.atoms_of_type("Component") == []

    def test_operations_after_commit_rejected(self, db):
        txn = db.begin()
        txn.commit()
        with pytest.raises(TransactionStateError):
            txn.insert("Part", {"name": "x"}, valid_from=0)

    def test_transaction_time_visible(self, db):
        txn = db.begin()
        assert txn.transaction_time >= 0
        txn.commit()

    def test_failed_op_inside_txn_leaves_txn_usable(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "x"}, valid_from=0)
            with pytest.raises(TypeMismatchError):
                txn.update(part, {"cost": "expensive"}, valid_from=5)
            txn.update(part, {"cost": 9.5}, valid_from=5)
        assert db.version_at(part, 6).values["cost"] == 9.5


class TestTemporalDML:
    def test_insert_with_bounded_validity(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "x"}, valid_from=0,
                              valid_to=10)
        assert db.version_at(part, 9) is not None
        assert db.version_at(part, 10) is None

    def test_update_from(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "x", "cost": 1.0},
                              valid_from=0)
        with db.transaction() as txn:
            txn.update(part, {"cost": 2.0}, valid_from=10)
        assert db.version_at(part, 9).values["cost"] == 1.0
        assert db.version_at(part, 10).values["cost"] == 2.0
        assert db.version_at(part, 9).values["name"] == "x"  # carried over

    def test_update_window(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "x", "cost": 1.0},
                              valid_from=0)
        with db.transaction() as txn:
            txn.update(part, {"cost": 5.0}, valid_from=10, valid_to=20)
        assert db.version_at(part, 15).values["cost"] == 5.0
        assert db.version_at(part, 25).values["cost"] == 1.0

    def test_update_outside_validity_rejected(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "x"}, valid_from=0,
                              valid_to=5)
        with pytest.raises(TemporalUpdateError):
            with db.transaction() as txn:
                txn.update(part, {"name": "y"}, valid_from=10)

    def test_delete_then_reinsert_validity(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "x"}, valid_from=0)
            txn.delete(part, valid_from=10)
        assert db.version_at(part, 10) is None
        # Re-open validity of the very same atom after the gap.
        with db.transaction() as txn:
            txn.insert("Part", {"name": "x2"}, valid_from=20, atom_id=part)
        assert db.version_at(part, 15) is None
        assert db.version_at(part, 25).values["name"] == "x2"

    def test_double_insert_overlap_rejected(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "x"}, valid_from=0)
        with pytest.raises(TemporalUpdateError):
            with db.transaction() as txn:
                txn.update(part, {"name": "y"}, valid_from=5)
                txn.delete(part, valid_from=0)
                txn.update(part, {"name": "z"}, valid_from=1)

    def test_correction_preserves_old_belief(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "x", "cost": 10.0},
                              valid_from=0)
        tt_before = db._clock.now()
        with db.transaction() as txn:
            txn.correct(part, 0, 5, {"cost": 99.0})
        assert db.version_at(part, 3).values["cost"] == 99.0
        assert db.version_at(part, 7).values["cost"] == 10.0
        assert db.version_at(part, 3, tt=tt_before - 1).values["cost"] == 10.0


class TestLinks:
    def test_link_symmetry(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "x"}, valid_from=0)
            hub = txn.insert("Component", {"cname": "hub"}, valid_from=0)
            txn.link("contains", part, hub, valid_from=0)
        assert db.version_at(part, 1).targets("contains") == {hub}
        assert db.version_at(hub, 1).targets("contains", "in") == {part}

    def test_link_window(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "x"}, valid_from=0)
            hub = txn.insert("Component", {"cname": "h"}, valid_from=0)
            txn.link("contains", part, hub, valid_from=5, valid_to=10)
        assert db.version_at(part, 4).targets("contains") == frozenset()
        assert db.version_at(part, 7).targets("contains") == {hub}
        assert db.version_at(part, 12).targets("contains") == frozenset()

    def test_unlink(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "x"}, valid_from=0)
            hub = txn.insert("Component", {"cname": "h"}, valid_from=0)
            txn.link("contains", part, hub, valid_from=0)
        with db.transaction() as txn:
            txn.unlink("contains", part, hub, valid_from=10)
        assert db.version_at(part, 9).targets("contains") == {hub}
        assert db.version_at(part, 10).targets("contains") == frozenset()
        assert db.version_at(hub, 10).targets("contains", "in") == frozenset()

    def test_unlink_nonexistent_rejected(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "x"}, valid_from=0)
            hub = txn.insert("Component", {"cname": "h"}, valid_from=0)
        with pytest.raises(TemporalUpdateError):
            with db.transaction() as txn:
                txn.unlink("contains", part, hub, valid_from=0)

    def test_wrong_direction_rejected(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "x"}, valid_from=0)
            hub = txn.insert("Component", {"cname": "h"}, valid_from=0)
            with pytest.raises(Exception):
                txn.link("contains", hub, part, valid_from=0)
            txn.abort()

    def test_one_to_many_cardinality_enforced(self, tmp_path):
        from repro import AtomType, Attribute, Cardinality, DataType, LinkType, Schema
        schema = Schema("c")
        schema.add_atom_type(AtomType("Part", [
            Attribute("name", DataType.STRING)]))
        schema.add_atom_type(AtomType("Doc", [
            Attribute("title", DataType.STRING)]))
        schema.add_link_type(LinkType("documented_by", "Part", "Doc",
                                      Cardinality.ONE_TO_MANY))
        db = TemporalDatabase.create(str(tmp_path / "card"), schema)
        with db.transaction() as txn:
            p1 = txn.insert("Part", {"name": "a"}, valid_from=0)
            p2 = txn.insert("Part", {"name": "b"}, valid_from=0)
            doc = txn.insert("Doc", {"title": "d"}, valid_from=0)
            txn.link("documented_by", p1, doc, valid_from=0)
        # The same document may not belong to a second part.
        with pytest.raises(CardinalityError):
            with db.transaction() as txn:
                txn.link("documented_by", p2, doc, valid_from=5)
        db.close()


class TestPersistence:
    def test_reopen_round_trip(self, tmp_path, cad_schema, strategy):
        path = str(tmp_path / "p")
        db = TemporalDatabase.create(path, cad_schema,
                                     DatabaseConfig(strategy=strategy))
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "x", "cost": 5.0},
                              valid_from=0)
            hub = txn.insert("Component", {"cname": "h"}, valid_from=0)
            txn.link("contains", part, hub, valid_from=0)
            txn.update(part, {"cost": 6.0}, valid_from=10)
        db.close()
        reopened = TemporalDatabase.open(path)
        assert reopened.config.strategy == strategy
        assert reopened.version_at(part, 5).values["cost"] == 5.0
        assert reopened.version_at(part, 15).values["cost"] == 6.0
        assert reopened.version_at(part, 5).targets("contains") == {hub}
        molecule = reopened.molecule_at(part, "Part.contains.Component", 5)
        assert molecule.atom_count() == 2
        reopened.close()

    def test_new_atoms_after_reopen_get_fresh_ids(self, tmp_path,
                                                  cad_schema, strategy):
        path = str(tmp_path / "p")
        db = TemporalDatabase.create(path, cad_schema,
                                     DatabaseConfig(strategy=strategy))
        with db.transaction() as txn:
            first = txn.insert("Part", {"name": "x"}, valid_from=0)
        db.close()
        reopened = TemporalDatabase.open(path)
        with reopened.transaction() as txn:
            second = txn.insert("Part", {"name": "y"}, valid_from=0)
        assert second > first
        reopened.close()

    def test_transaction_times_continue_after_reopen(self, tmp_path,
                                                     cad_schema, strategy):
        path = str(tmp_path / "p")
        db = TemporalDatabase.create(path, cad_schema,
                                     DatabaseConfig(strategy=strategy))
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "x"}, valid_from=0)
            first_tt = txn.transaction_time
        db.close()
        reopened = TemporalDatabase.open(path)
        with reopened.transaction() as txn:
            txn.update(part, {"name": "y"}, valid_from=5)
            assert txn.transaction_time > first_tt
        reopened.close()

    def test_create_over_existing_rejected(self, tmp_path, cad_schema):
        path = str(tmp_path / "p")
        TemporalDatabase.create(path, cad_schema).close()
        with pytest.raises(CatalogError):
            TemporalDatabase.create(path, cad_schema)

    def test_closed_database_rejects_operations(self, tmp_path, cad_schema):
        db = TemporalDatabase.create(str(tmp_path / "p"), cad_schema)
        db.close()
        with pytest.raises(StorageError):
            db.begin()
        db.close()  # idempotent

    def test_close_with_active_txn_rejected(self, tmp_path, cad_schema):
        db = TemporalDatabase.create(str(tmp_path / "p"), cad_schema)
        txn = db.begin()
        with pytest.raises(TransactionStateError):
            db.close()
        txn.abort()
        db.close()

    def test_concurrent_double_close_is_safe(self, tmp_path, cad_schema):
        import threading

        db = TemporalDatabase.create(str(tmp_path / "p"), cad_schema)
        with db.transaction() as txn:
            txn.insert("Part", {"name": "x"}, valid_from=0)
        errors = []

        def closer():
            try:
                db.close()
            except Exception as exc:  # pragma: no cover - the failure case
                errors.append(exc)

        threads = [threading.Thread(target=closer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert db._closed

    def test_close_concurrent_with_reads_never_hits_closed_files(
            self, tmp_path, cad_schema):
        """Readers racing close() either finish or get StorageError —
        never a ValueError from a closed file handle."""
        import threading

        db = TemporalDatabase.create(
            str(tmp_path / "p"), cad_schema,
            DatabaseConfig(buffer_pages=4))  # force real page reads
        with db.transaction() as txn:
            parts = [txn.insert("Part", {"name": f"p{i}"}, valid_from=0)
                     for i in range(50)]
        unexpected = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    for part in parts:
                        db.version_at(part, 5)
                except StorageError:
                    return  # the documented post-close behaviour
                except Exception as exc:  # pragma: no cover
                    unexpected.append(exc)
                    return

        threads = [threading.Thread(target=reader) for _ in range(6)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        db.close()
        stop.set()
        for thread in threads:
            thread.join()
        assert not unexpected


class TestReads:
    def test_history_returns_bitemporal_record(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "x"}, valid_from=0)
        with db.transaction() as txn:
            txn.update(part, {"name": "y"}, valid_from=10)
        versions = db.history(part)
        assert len(versions) == 3  # closed original + two pieces
        live = [v for v in versions if v.live]
        assert len(live) == 2

    def test_unknown_atom_rejected(self, db):
        with pytest.raises(UnknownAtomError):
            db.history(12345)
        assert db.version_at(12345, 0) is None

    def test_io_stats_available(self, db):
        with db.transaction() as txn:
            txn.insert("Part", {"name": "x"}, valid_from=0)
        stats = db.io_stats()
        assert stats["wal_bytes"] > 0
        assert stats["file_bytes"] > 0
        db.reset_io_stats()
        assert db.io_stats()["disk_reads"] == 0

    def test_storage_stats(self, db, strategy):
        with db.transaction() as txn:
            txn.insert("Part", {"name": "x"}, valid_from=0)
        stats = db.storage_stats()
        assert stats.strategy == strategy.value
        assert stats.total_pages > 0


class TestLifespan:
    def test_lifespan_with_gap(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "x"}, valid_from=0,
                              valid_to=10)
            txn.insert("Part", {"name": "x"}, valid_from=20,
                       atom_id=part)
        spans = db.lifespan(part)
        assert [str(span) for span in spans] == ["[0, 10)", "[20, FOREVER)"]

    def test_lifespan_as_of(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "x"}, valid_from=0)
        tt_before = db._clock.now() - 1
        with db.transaction() as txn:
            txn.delete(part, valid_from=50)
        now_spans = db.lifespan(part)
        old_spans = db.lifespan(part, tt=tt_before)
        assert [str(s) for s in now_spans] == ["[0, 50)"]
        assert [str(s) for s in old_spans] == ["[0, FOREVER)"]

"""Tests for attribute data types."""

import pytest

from repro.core.datatypes import DataType, parse_datatype
from repro.errors import TypeMismatchError
from repro.storage.serialization import FieldType


class TestValidation:
    def test_int(self):
        assert DataType.INT.validate("a", 5) == 5
        with pytest.raises(TypeMismatchError):
            DataType.INT.validate("a", 5.0)
        with pytest.raises(TypeMismatchError):
            DataType.INT.validate("a", True)

    def test_float_widening(self):
        assert DataType.FLOAT.validate("a", 5) == 5.0
        assert isinstance(DataType.FLOAT.validate("a", 5), float)
        with pytest.raises(TypeMismatchError):
            DataType.FLOAT.validate("a", "5")

    def test_string(self):
        assert DataType.STRING.validate("a", "x") == "x"
        with pytest.raises(TypeMismatchError):
            DataType.STRING.validate("a", 5)

    def test_bool(self):
        assert DataType.BOOL.validate("a", True) is True
        with pytest.raises(TypeMismatchError):
            DataType.BOOL.validate("a", 1)

    def test_time(self):
        assert DataType.TIME.validate("a", -100) == -100
        with pytest.raises(TypeMismatchError):
            DataType.TIME.validate("a", 1.5)

    def test_none_passes_all(self):
        for data_type in DataType:
            assert data_type.validate("a", None) is None

    def test_error_names_attribute(self):
        with pytest.raises(TypeMismatchError, match="'price'"):
            DataType.INT.validate("price", "cheap")


class TestMappings:
    def test_field_types(self):
        assert DataType.INT.field_type is FieldType.INT
        assert DataType.FLOAT.field_type is FieldType.FLOAT
        assert DataType.STRING.field_type is FieldType.STRING
        assert DataType.BOOL.field_type is FieldType.BOOL
        assert DataType.TIME.field_type is FieldType.TIME

    def test_key_widths(self):
        assert DataType.INT.key_width == 8
        assert DataType.BOOL.key_width == 1
        assert DataType.STRING.key_width == 16

    def test_encode_key_lossiness(self):
        _, lossy = DataType.STRING.encode_key("short")
        assert not lossy
        _, lossy = DataType.STRING.encode_key("x" * 40)
        assert lossy
        _, lossy = DataType.INT.encode_key(5)
        assert not lossy

    def test_encode_key_order(self):
        low, _ = DataType.FLOAT.encode_key(1.5)
        high, _ = DataType.FLOAT.encode_key(2.5)
        assert low < high


class TestParsing:
    def test_round_trip_names(self):
        for data_type in DataType:
            assert parse_datatype(data_type.value) is data_type

    def test_case_insensitive(self):
        assert parse_datatype("INT") is DataType.INT

    def test_unknown_rejected(self):
        with pytest.raises(TypeMismatchError):
            parse_datatype("varchar")

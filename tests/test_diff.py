"""Tests for molecule diffing."""

import pytest

from repro.core.diff import diff_molecules
from repro.testing import ReferenceDatabase


@pytest.fixture
def evolving(cad_schema):
    """A part whose composition and values change at t=10."""
    ref = ReferenceDatabase(cad_schema)
    part = ref.insert("Part", {"name": "wheel", "cost": 10.0},
                      valid_from=0)
    hub = ref.insert("Component", {"cname": "hub", "weight": 1.0},
                     valid_from=0)
    rim = ref.insert("Component", {"cname": "rim", "weight": 2.0},
                     valid_from=0)
    tube = ref.insert("Component", {"cname": "tube", "weight": 0.5},
                      valid_from=10)
    ref.link("contains", part, hub, valid_from=0)
    ref.link("contains", part, rim, valid_from=0)
    ref.link("contains", part, tube, valid_from=10)       # tube joins
    ref.unlink("contains", part, rim, valid_from=10)      # rim leaves
    ref.update(hub, {"weight": 1.5}, valid_from=10)       # hub changes
    ref.update(part, {"cost": 12.0}, valid_from=10)       # root changes
    return ref, part


MT = "Part.contains.Component"


class TestDiff:
    def test_no_difference(self, evolving):
        ref, part = evolving
        a = ref.molecule_at(part, MT, 3)
        b = ref.molecule_at(part, MT, 4)
        diff = diff_molecules(a, b)
        assert diff.is_empty
        assert diff.summary() == "no differences"

    def test_full_delta(self, evolving):
        ref, part = evolving
        before = ref.molecule_at(part, MT, 5)
        after = ref.molecule_at(part, MT, 15)
        diff = diff_molecules(before, after)
        assert [a.version.values["cname"] for a in diff.added] == ["tube"]
        assert [a.version.values["cname"] for a in diff.removed] == ["rim"]
        changed_names = sorted(
            new.version.values.get("cname") or new.version.values["name"]
            for _, new, _ in diff.changed)
        assert changed_names == ["hub", "wheel"]

    def test_attribute_change_details(self, evolving):
        ref, part = evolving
        diff = diff_molecules(ref.molecule_at(part, MT, 5),
                              ref.molecule_at(part, MT, 15))
        hub_changes = next(changes for _, new, changes in diff.changed
                           if new.version.values.get("cname") == "hub")
        (change,) = hub_changes
        assert (change.attribute, change.old, change.new) == (
            "weight", 1.0, 1.5)

    def test_structural_change_without_values(self, evolving):
        """The root's membership change alone marks it as changed."""
        ref, part = evolving
        ref.update(part, {"cost": 12.0}, valid_from=20)  # no-op value-wise
        diff = diff_molecules(ref.molecule_at(part, MT, 5),
                              ref.molecule_at(part, MT, 15))
        root_entry = next((old, new, changes)
                          for old, new, changes in diff.changed
                          if new.atom_id == part)
        # The root changed both a value and its traversed children.
        assert root_entry[2]  # cost change recorded

    def test_summary_format(self, evolving):
        ref, part = evolving
        diff = diff_molecules(ref.molecule_at(part, MT, 5),
                              ref.molecule_at(part, MT, 15))
        text = diff.summary()
        assert text.count("+") >= 1
        assert text.count("-") >= 1
        assert "->" in text

    def test_untraversed_ref_change_is_invisible(self, cad_schema):
        """A change in a link the molecule type does not follow must not
        mark the atom as changed."""
        ref = ReferenceDatabase(cad_schema)
        part = ref.insert("Part", {"name": "p"}, valid_from=0)
        hub = ref.insert("Component", {"cname": "h"}, valid_from=0)
        sup = ref.insert("Supplier", {"sname": "s"}, valid_from=0)
        ref.link("contains", part, hub, valid_from=0)
        ref.link("supplied_by", hub, sup, valid_from=10)  # untraversed
        diff = diff_molecules(ref.molecule_at(part, MT, 5),
                              ref.molecule_at(part, MT, 15))
        assert diff.is_empty

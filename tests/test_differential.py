"""Differential tests: the engine versus the in-memory oracle.

The oracle executes the same pure history algebra on plain Python data;
whatever the engine stores and retrieves through pages, codecs,
directories, and indexes must agree with it exactly.  Random operation
sequences come from hypothesis; structured ones from the BOM workload.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import DatabaseConfig, TemporalDatabase, VersionStrategy
from repro.errors import ReproError
from repro.temporal import FOREVER, Interval
from repro.testing import ReferenceDatabase
from repro.workloads import (
    apply_to_database,
    apply_to_reference,
    cad_schema,
    generate_bom,
    small_spec,
)


def assert_same_view(db, ref, db_ids, ref_ids, probes, mtype):
    """Compare slices and histories for every atom at several instants."""
    for handle in db_ids:
        db_atom, ref_atom = db_ids[handle], ref_ids[handle]
        for at in probes:
            mine = db.engine.version_at(db_atom, at)
            theirs = ref.version_at(ref_atom, at)
            assert (mine is None) == (theirs is None), (handle, at)
            if mine is not None:
                assert dict(mine.values) == dict(theirs.values), (handle, at)


class TestWorkloadDifferential:
    @pytest.mark.parametrize("seed", [1, 7, 1992])
    def test_bom_workload_matches_oracle(self, tmp_path, strategy, seed):
        spec = small_spec(seed=seed)
        ops, groups = generate_bom(spec)
        ref = ReferenceDatabase(cad_schema())
        ref_ids = apply_to_reference(ref, ops)
        db = TemporalDatabase.create(
            str(tmp_path / f"dbdiff{seed}"), cad_schema(),
            DatabaseConfig(strategy=strategy, buffer_pages=48))
        db_ids = apply_to_database(db, ops)
        probes = (0, 1, 2, spec.versions_per_atom, FOREVER - 1)
        assert_same_view(db, ref, db_ids, ref_ids, probes, None)
        # Molecules for every part at every probe instant:
        for handle in groups["Part"]:
            for at in probes:
                mine = db.molecule_at(db_ids[handle],
                                      "Part.contains.Component", at)
                theirs = ref.molecule_at(ref_ids[handle],
                                         "Part.contains.Component", at)
                assert (mine is None) == (theirs is None)
                if mine is not None:
                    assert mine.atom_count() == theirs.atom_count()
        # Histories for a few parts:
        for handle in groups["Part"][:3]:
            mine = db.molecule_history(db_ids[handle], "Part",
                                       Interval(0, 10))
            theirs = ref.molecule_history(ref_ids[handle], "Part",
                                          Interval(0, 10))
            assert [str(span) for span, _ in mine] == [
                str(span) for span, _ in theirs]
            for (_, m), (_, t) in zip(mine, theirs):
                assert m.same_composition_as(t)
        db.close()

    @pytest.mark.parametrize("parallelism", [1, 4])
    def test_batched_build_many_matches_oracle(self, tmp_path, strategy,
                                               parallelism):
        """The set-oriented read path (batched fetch, decode cache, and
        optional thread parallelism) returns exactly what per-root oracle
        construction does, in root order."""
        spec = small_spec(seed=7)
        ops, groups = generate_bom(spec)
        ref = ReferenceDatabase(cad_schema())
        ref_ids = apply_to_reference(ref, ops)
        db = TemporalDatabase.create(
            str(tmp_path / f"dbpar{parallelism}"), cad_schema(),
            DatabaseConfig(strategy=strategy, buffer_pages=48))
        db_ids = apply_to_database(db, ops)
        roots = [db_ids[handle] for handle in groups["Part"]]
        back = {db_ids[handle]: ref_ids[handle]
                for handle in groups["Part"]}
        for at in (0, 1, 2, spec.versions_per_atom):
            mine = db.molecules_at(roots, "Part.contains.Component", at,
                                   parallelism=parallelism)
            theirs = [ref.molecule_at(back[root],
                                      "Part.contains.Component", at)
                      for root in roots]
            theirs = [m for m in theirs if m is not None]
            assert len(mine) == len(theirs), at
            for m, t in zip(mine, theirs):
                assert m.atom_count() == t.atom_count()
                assert sorted(a.type_name for a in m.atoms()) == sorted(
                    a.type_name for a in t.atoms())
        db.close()


@st.composite
def op_batches(draw):
    """A short random program over two parts and two components."""
    batch = []
    for _ in range(draw(st.integers(1, 12))):
        kind = draw(st.sampled_from(
            ["insert_part", "insert_comp", "update", "delete", "link",
             "unlink", "correct"]))
        start = draw(st.integers(0, 40))
        end = draw(st.integers(start + 1, 60))
        value = draw(st.integers(0, 99))
        target = draw(st.integers(0, 3))
        batch.append((kind, start, end, value, target))
    return batch


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(batch=op_batches(),
       strategy=st.sampled_from(list(VersionStrategy)))
def test_random_programs_match_oracle(tmp_path_factory, batch, strategy):
    schema = cad_schema()
    ref = ReferenceDatabase(schema)
    path = tmp_path_factory.mktemp("randdiff")
    db = TemporalDatabase.create(str(path / "db"), schema,
                                 DatabaseConfig(strategy=strategy,
                                                buffer_pages=32))
    parts, comps = [], []

    def run(apply_ref, apply_db):
        """Apply one logical op to both; both must agree on outcome."""
        ref_error = db_error = None
        try:
            apply_ref()
        except ReproError as exc:
            ref_error = type(exc)
        try:
            with db.transaction() as txn:
                apply_db(txn)
        except ReproError as exc:
            db_error = type(exc)
        assert (ref_error is None) == (db_error is None), (ref_error,
                                                           db_error)

    for kind, start, end, value, target in batch:
        if kind == "insert_part":
            name = f"part-{value}"
            ref_id = [None]

            def ins_ref():
                ref_id[0] = ref.insert("Part", {"name": name},
                                       valid_from=start, valid_to=end)

            db_id = [None]

            def ins_db(txn):
                db_id[0] = txn.insert("Part", {"name": name},
                                      valid_from=start, valid_to=end)

            run(ins_ref, ins_db)
            if ref_id[0] is not None and db_id[0] is not None:
                parts.append((db_id[0], ref_id[0]))
        elif kind == "insert_comp":
            ref_id, db_id = [None], [None]

            def insc_ref():
                ref_id[0] = ref.insert("Component",
                                       {"cname": f"c{value}"},
                                       valid_from=start)

            def insc_db(txn):
                db_id[0] = txn.insert("Component", {"cname": f"c{value}"},
                                      valid_from=start)

            run(insc_ref, insc_db)
            if ref_id[0] is not None:
                comps.append((db_id[0], ref_id[0]))
        elif kind == "update" and parts:
            db_atom, ref_atom = parts[target % len(parts)]
            run(lambda: ref.update(ref_atom, {"cost": float(value)},
                                   valid_from=start),
                lambda txn: txn.update(db_atom, {"cost": float(value)},
                                       valid_from=start))
        elif kind == "delete" and parts:
            db_atom, ref_atom = parts[target % len(parts)]
            run(lambda: ref.delete(ref_atom, valid_from=start,
                                   valid_to=end),
                lambda txn: txn.delete(db_atom, valid_from=start,
                                       valid_to=end))
        elif kind == "correct" and parts:
            db_atom, ref_atom = parts[target % len(parts)]
            run(lambda: ref.correct(ref_atom, start, end,
                                    {"cost": float(value)}),
                lambda txn: txn.correct(db_atom, start, end,
                                        {"cost": float(value)}))
        elif kind == "link" and parts and comps:
            db_p, ref_p = parts[target % len(parts)]
            db_c, ref_c = comps[value % len(comps)]
            run(lambda: ref.link("contains", ref_p, ref_c,
                                 valid_from=start, valid_to=end),
                lambda txn: txn.link("contains", db_p, db_c,
                                     valid_from=start, valid_to=end))
        elif kind == "unlink" and parts and comps:
            db_p, ref_p = parts[target % len(parts)]
            db_c, ref_c = comps[value % len(comps)]
            run(lambda: ref.unlink("contains", ref_p, ref_c,
                                   valid_from=start, valid_to=end),
                lambda txn: txn.unlink("contains", db_p, db_c,
                                       valid_from=start, valid_to=end))

    # Final comparison over a grid of instants.
    for db_atom, ref_atom in parts + comps:
        for at in (0, 10, 25, 45, 70):
            mine = db.engine.version_at(db_atom, at)
            theirs = ref.version_at(ref_atom, at)
            assert (mine is None) == (theirs is None)
            if mine is not None:
                assert dict(mine.values) == dict(theirs.values)
                assert len(mine.refs) == len(theirs.refs)
    db.close()


@pytest.mark.parametrize("window", [(0, 3), (1, 4), (0, 50)],
                         ids=["early", "mid", "wide"])
def test_molecule_histories_match_oracle(tmp_path, strategy, window):
    """Interval queries agree between the engine and the oracle for every
    part, across windows and strategies."""
    spec = small_spec(seed=99)
    ops, groups = generate_bom(spec)
    ref = ReferenceDatabase(cad_schema())
    ref_ids = apply_to_reference(ref, ops)
    db = TemporalDatabase.create(str(tmp_path / "histdiff"), cad_schema(),
                                 DatabaseConfig(strategy=strategy))
    db_ids = apply_to_database(db, ops)
    span = Interval(*window)
    for handle in groups["Part"]:
        mine = db.molecule_history(db_ids[handle],
                                   "Part.contains.Component", span)
        theirs = ref.molecule_history(ref_ids[handle],
                                      "Part.contains.Component", span)
        assert [str(interval) for interval, _ in mine] == [
            str(interval) for interval, _ in theirs], handle
        for (_, molecule), (_, expected) in zip(mine, theirs):
            assert molecule.same_composition_as(expected), handle
    db.close()

"""Tests for the atom directory (persistent hash map)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.buffer import BufferManager
from repro.storage.directory import AtomDirectory
from repro.storage.disk import DiskManager


@pytest.fixture
def directory(buffer):
    return AtomDirectory(buffer, "dir", num_buckets=8)


class TestBasics:
    def test_get_missing(self, directory):
        assert directory.get(42) is None
        assert 42 not in directory

    def test_put_get(self, directory):
        directory.put(1, b"payload-1")
        assert directory.get(1) == b"payload-1"
        assert 1 in directory

    def test_overwrite(self, directory):
        directory.put(1, b"old")
        directory.put(1, b"new")
        assert directory.get(1) == b"new"

    def test_overwrite_with_longer_payload(self, directory):
        directory.put(1, b"x")
        directory.put(1, b"y" * 500)
        assert directory.get(1) == b"y" * 500

    def test_delete(self, directory):
        directory.put(1, b"x")
        assert directory.delete(1)
        assert directory.get(1) is None
        assert not directory.delete(1)

    def test_negative_keys(self, directory):
        directory.put(-5, b"neg")
        assert directory.get(-5) == b"neg"

    def test_len(self, directory):
        for key in range(10):
            directory.put(key, bytes([key]))
        assert len(directory) == 10
        directory.delete(3)
        assert len(directory) == 9


class TestScale:
    def test_many_entries_overflow_chains(self, directory):
        # 8 buckets with hundreds of fat entries forces overflow pages.
        for key in range(400):
            directory.put(key, f"value-{key}".encode() * 30)
        for key in range(400):
            assert directory.get(key) == f"value-{key}".encode() * 30
        assert len(directory.pages()) > 8
        directory.check()

    def test_items_complete(self, directory):
        expected = {key: bytes([key % 250]) * (key % 7 + 1)
                    for key in range(100)}
        for key, value in expected.items():
            directory.put(key, value)
        assert dict(directory.items()) == expected

    def test_update_after_overflow(self, directory):
        for key in range(300):
            directory.put(key, b"a" * 50)
        directory.put(150, b"changed")
        assert directory.get(150) == b"changed"


class TestPersistence:
    def test_reopen_from_bucket_pages(self, tmp_path):
        disk = DiskManager(tmp_path / "d.db")
        pool = BufferManager(disk, capacity=16)
        directory = AtomDirectory(pool, "dir", num_buckets=4)
        for key in range(50):
            directory.put(key, f"v{key}".encode())
        buckets = directory.bucket_pages
        pool.flush_all()
        reopened = AtomDirectory(pool, "dir", bucket_pages=buckets)
        for key in range(50):
            assert reopened.get(key) == f"v{key}".encode()
        disk.close()


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["put", "delete"]),
                          st.integers(min_value=0, max_value=40),
                          st.binary(min_size=0, max_size=120)),
                max_size=80))
def test_random_operations_match_dict(tmp_path_factory, operations):
    directory_path = tmp_path_factory.mktemp("dirprop")
    disk = DiskManager(directory_path / "d.db")
    pool = BufferManager(disk, capacity=16)
    directory = AtomDirectory(pool, "prop", num_buckets=4)
    model = {}
    for kind, key, payload in operations:
        if kind == "put":
            directory.put(key, payload)
            model[key] = payload
        else:
            assert directory.delete(key) == (key in model)
            model.pop(key, None)
    assert dict(directory.items()) == model
    directory.check()
    disk.close()

"""Tests for the disk manager."""

import pytest

from repro.errors import PageError, StorageError
from repro.storage.disk import DiskManager


class TestLifecycle:
    def test_new_file_has_header_page(self, tmp_path):
        with DiskManager(tmp_path / "a.db") as disk:
            assert disk.page_count == 1  # header only

    def test_page_size_persisted(self, tmp_path):
        path = tmp_path / "a.db"
        with DiskManager(path, page_size=1024) as disk:
            disk.allocate_page()
        with DiskManager(path, page_size=1024) as disk:
            assert disk.page_size == 1024
            assert disk.page_count == 2

    def test_mismatched_page_size_rejected(self, tmp_path):
        path = tmp_path / "a.db"
        DiskManager(path, page_size=1024).close()
        with pytest.raises(PageError):
            DiskManager(path, page_size=2048)

    def test_non_database_file_rejected(self, tmp_path):
        path = tmp_path / "junk.db"
        path.write_bytes(b"not a database file" * 100)
        with pytest.raises(PageError):
            DiskManager(path)

    def test_tiny_page_size_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            DiskManager(tmp_path / "a.db", page_size=16)


class TestPageIO:
    def test_round_trip(self, tmp_path):
        with DiskManager(tmp_path / "a.db") as disk:
            pid = disk.allocate_page()
            image = bytes(range(256)) * (disk.page_size // 256)
            disk.write_page(pid, image)
            assert bytes(disk.read_page(pid)) == image

    def test_fresh_page_is_zeroed(self, tmp_path):
        with DiskManager(tmp_path / "a.db") as disk:
            pid = disk.allocate_page()
            assert bytes(disk.read_page(pid)) == b"\x00" * disk.page_size

    def test_wrong_size_write_rejected(self, tmp_path):
        with DiskManager(tmp_path / "a.db") as disk:
            pid = disk.allocate_page()
            with pytest.raises(PageError):
                disk.write_page(pid, b"short")

    def test_header_page_not_accessible(self, tmp_path):
        with DiskManager(tmp_path / "a.db") as disk:
            with pytest.raises(PageError):
                disk.read_page(0)

    def test_out_of_range_rejected(self, tmp_path):
        with DiskManager(tmp_path / "a.db") as disk:
            with pytest.raises(PageError):
                disk.read_page(99)

    def test_persistence_across_reopen(self, tmp_path):
        path = tmp_path / "a.db"
        with DiskManager(path) as disk:
            pid = disk.allocate_page()
            disk.write_page(pid, b"\xab" * disk.page_size)
            disk.sync()
        with DiskManager(path) as disk:
            assert bytes(disk.read_page(pid)) == b"\xab" * disk.page_size


class TestAllocation:
    def test_allocation_grows_file(self, tmp_path):
        with DiskManager(tmp_path / "a.db") as disk:
            first = disk.allocate_page()
            second = disk.allocate_page()
            assert second == first + 1
            assert disk.page_count == 3

    def test_freed_pages_are_reused(self, tmp_path):
        with DiskManager(tmp_path / "a.db") as disk:
            a = disk.allocate_page()
            b = disk.allocate_page()
            disk.deallocate_page(a)
            disk.deallocate_page(b)
            # LIFO reuse from the free list, no file growth
            assert disk.allocate_page() == b
            assert disk.allocate_page() == a
            assert disk.page_count == 3

    def test_free_list_survives_reopen(self, tmp_path):
        path = tmp_path / "a.db"
        with DiskManager(path) as disk:
            a = disk.allocate_page()
            disk.allocate_page()
            disk.deallocate_page(a)
        with DiskManager(path) as disk:
            assert disk.allocate_page() == a

    def test_reused_page_is_zeroed(self, tmp_path):
        with DiskManager(tmp_path / "a.db") as disk:
            a = disk.allocate_page()
            disk.write_page(a, b"\xff" * disk.page_size)
            disk.deallocate_page(a)
            again = disk.allocate_page()
            assert again == a
            assert bytes(disk.read_page(a)) == b"\x00" * disk.page_size


class TestStats:
    def test_counters_accumulate(self, tmp_path):
        with DiskManager(tmp_path / "a.db") as disk:
            pid = disk.allocate_page()
            disk.write_page(pid, b"\x00" * disk.page_size)
            disk.read_page(pid)
            assert disk.stats.reads >= 1
            assert disk.stats.writes >= 2
            assert disk.stats.allocations == 1
            disk.stats.reset()
            assert disk.stats.reads == 0

    def test_data_bytes_on_disk(self, tmp_path):
        with DiskManager(tmp_path / "a.db", page_size=1024) as disk:
            disk.allocate_page()
            assert disk.data_bytes_on_disk() == 2 * 1024

"""Tests for temporal elements (canonical disjoint interval sets)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.temporal import Interval, TemporalElement

chronons = st.integers(min_value=-200, max_value=200)


@st.composite
def intervals(draw):
    start = draw(chronons)
    end = draw(st.integers(min_value=start + 1, max_value=202))
    return Interval(start, end)


elements = st.lists(intervals(), max_size=6).map(TemporalElement)


class TestCanonicalForm:
    def test_empty(self):
        element = TemporalElement.empty()
        assert element.is_empty
        assert not element
        assert len(element) == 0

    def test_overlapping_inputs_coalesce(self):
        element = TemporalElement.of(Interval(0, 5), Interval(3, 9))
        assert list(element) == [Interval(0, 9)]

    def test_adjacent_inputs_coalesce(self):
        element = TemporalElement.of(Interval(0, 5), Interval(5, 9))
        assert list(element) == [Interval(0, 9)]

    def test_disjoint_inputs_stay_separate(self):
        element = TemporalElement.of(Interval(6, 9), Interval(0, 5))
        assert list(element) == [Interval(0, 5), Interval(6, 9)]

    def test_equality_is_semantic(self):
        a = TemporalElement.of(Interval(0, 5), Interval(5, 9))
        b = TemporalElement.of(Interval(0, 9))
        assert a == b
        assert hash(a) == hash(b)

    def test_duration(self):
        element = TemporalElement.of(Interval(0, 5), Interval(10, 12))
        assert element.duration() == 7


class TestMembership:
    def test_contains(self):
        element = TemporalElement.of(Interval(0, 5), Interval(10, 12))
        assert element.contains(0)
        assert element.contains(11)
        assert not element.contains(5)
        assert not element.contains(9)

    def test_covers(self):
        big = TemporalElement.of(Interval(0, 10))
        small = TemporalElement.of(Interval(2, 4), Interval(6, 8))
        assert big.covers(small)
        assert not small.covers(big)


class TestSetAlgebra:
    def test_union(self):
        a = TemporalElement.of(Interval(0, 4))
        b = TemporalElement.of(Interval(2, 8), Interval(10, 12))
        assert a.union(b) == TemporalElement.of(Interval(0, 8),
                                                Interval(10, 12))

    def test_intersect(self):
        a = TemporalElement.of(Interval(0, 6), Interval(8, 12))
        b = TemporalElement.of(Interval(4, 10))
        assert a.intersect(b) == TemporalElement.of(Interval(4, 6),
                                                    Interval(8, 10))

    def test_difference(self):
        a = TemporalElement.of(Interval(0, 10))
        b = TemporalElement.of(Interval(2, 4), Interval(6, 8))
        assert a.difference(b) == TemporalElement.of(
            Interval(0, 2), Interval(4, 6), Interval(8, 10))

    def test_difference_with_empty(self):
        a = TemporalElement.of(Interval(0, 10))
        assert a.difference(TemporalElement.empty()) == a


# -- properties ----------------------------------------------------------------


@given(elements, elements, chronons)
def test_union_membership(a, b, at):
    assert a.union(b).contains(at) == (a.contains(at) or b.contains(at))


@given(elements, elements, chronons)
def test_intersection_membership(a, b, at):
    assert a.intersect(b).contains(at) == (a.contains(at) and b.contains(at))


@given(elements, elements, chronons)
def test_difference_membership(a, b, at):
    assert a.difference(b).contains(at) == (a.contains(at)
                                            and not b.contains(at))


@given(elements)
def test_canonical_intervals_are_disjoint_and_separated(element):
    runs = list(element)
    for left, right in zip(runs, runs[1:]):
        assert left.end < right.start  # disjoint and non-adjacent


@given(elements, elements)
def test_de_morgan_style_duration(a, b):
    union = a.union(b).duration()
    assert union == a.duration() + b.duration() - a.intersect(b).duration()

"""Tests for the storage engine's logical operation layer.

These drive the engine directly (no transactions) to pin down undo
behaviour, index maintenance, and the type-prefixed record format.
"""

import pytest

from repro.errors import (
    TemporalUpdateError,
    TypeMismatchError,
    UnknownAtomError,
    UnknownTypeError,
)
from repro.temporal import FOREVER, Interval


@pytest.fixture
def engine(db):
    return db.engine


def insert(engine, atom_id, type_name="Part", values=None, vf=0,
           vt=FOREVER, tt=0):
    values = values if values is not None else {"name": f"atom-{atom_id}"}
    return engine.insert(type_name, values, vf, vt, tt, atom_id)


class TestInsert:
    def test_insert_and_read(self, engine):
        insert(engine, 1, values={"name": "x", "cost": 2.5})
        version = engine.version_at(1, 5)
        assert version.values["cost"] == 2.5
        assert engine.atom_type_name(1) == "Part"

    def test_insert_validates_values(self, engine):
        with pytest.raises(TypeMismatchError):
            insert(engine, 1, values={"name": 42})

    def test_insert_unknown_type(self, engine):
        with pytest.raises(UnknownTypeError):
            insert(engine, 1, type_name="Mystery")

    def test_insert_registers_type_index(self, engine):
        insert(engine, 1)
        insert(engine, 2, type_name="Component", values={"cname": "c"})
        assert list(engine.atoms_of_type("Part")) == [1]
        assert list(engine.atoms_of_type("Component")) == [2]

    def test_reinsert_different_type_rejected(self, engine):
        insert(engine, 1, vf=0, vt=10)
        with pytest.raises(TemporalUpdateError):
            insert(engine, 1, type_name="Component",
                   values={"cname": "c"}, vf=20)

    def test_undo_insert_removes_atom(self, engine):
        undos = insert(engine, 1)
        for undo in reversed(undos):
            undo()
        assert not engine.atom_exists(1)
        assert list(engine.atoms_of_type("Part")) == []


class TestUpdateUndo:
    def test_undo_update_restores_exact_bytes(self, engine):
        insert(engine, 1, values={"name": "x", "cost": 1.0}, tt=0)
        before = engine.all_versions(1)
        undos = engine.update(1, {"cost": 2.0}, 10, tt=1)
        assert engine.version_at(1, 15).values["cost"] == 2.0
        for undo in reversed(undos):
            undo()
        assert engine.all_versions(1) == before

    def test_undo_delete(self, engine):
        insert(engine, 1, tt=0)
        before = engine.all_versions(1)
        undos = engine.delete(1, 10, tt=1)
        for undo in reversed(undos):
            undo()
        assert engine.all_versions(1) == before

    def test_undo_link_restores_both_sides(self, engine):
        insert(engine, 1, tt=0)
        insert(engine, 2, type_name="Component", values={"cname": "c"},
               tt=0)
        part_before = engine.all_versions(1)
        comp_before = engine.all_versions(2)
        undos = engine.link("contains", 1, 2, 5, tt=1)
        for undo in reversed(undos):
            undo()
        assert engine.all_versions(1) == part_before
        assert engine.all_versions(2) == comp_before


class TestIndexMaintenance:
    def test_backfill_on_creation(self, engine):
        insert(engine, 1, values={"name": "x", "cost": 1.0}, tt=0)
        engine.update(1, {"cost": 2.0}, 10, tt=1)
        engine.create_attribute_index("Part", "cost")
        assert sorted(engine.candidates_for_equality("Part", "cost",
                                                     1.0)) == [1]
        assert sorted(engine.candidates_for_equality("Part", "cost",
                                                     2.0)) == [1]

    def test_new_versions_indexed(self, engine):
        engine.create_attribute_index("Part", "cost")
        insert(engine, 1, values={"name": "x", "cost": 5.0}, tt=0)
        engine.update(1, {"cost": 7.0}, 10, tt=1)
        assert engine.candidates_for_equality("Part", "cost", 7.0) == [1]

    def test_no_index_returns_none(self, engine):
        assert engine.candidates_for_equality("Part", "cost", 1.0) is None

    def test_vt_index_tracks_changes(self, engine):
        engine.create_vt_index("Part")
        insert(engine, 1, vf=0, tt=0)
        insert(engine, 2, vf=100, tt=0)
        engine.update(1, {"cost": 1.0}, 50, tt=1)
        assert sorted(engine.atoms_changed_during("Part", 0, 10)) == [1]
        assert sorted(engine.atoms_changed_during("Part", 0, 101)) == [1, 2]
        assert sorted(engine.atoms_changed_during("Part", 40, 60)) == [1]

    def test_vt_index_backfill(self, engine):
        insert(engine, 1, vf=0, tt=0)
        engine.update(1, {"cost": 1.0}, 30, tt=1)
        engine.create_vt_index("Part")
        assert engine.atoms_changed_during("Part", 25, 35) == [1]


class TestReads:
    def test_current_version(self, engine):
        insert(engine, 1, values={"name": "a"}, tt=0)
        engine.update(1, {"name": "b"}, 10, tt=1)
        assert engine.current_version(1).values["name"] == "b"

    def test_unknown_atom(self, engine):
        with pytest.raises(UnknownAtomError):
            engine.all_versions(77)
        with pytest.raises(UnknownAtomError):
            engine.current_version(77)
        assert engine.version_at(77, 0) is None

    def test_lifespan(self, engine):
        insert(engine, 1, vf=0, vt=10, tt=0)
        insert(engine, 1, vf=20, vt=30, tt=1)
        spans = engine.lifespan(1)
        assert list(spans) == [Interval(0, 10), Interval(20, 30)]

    def test_as_of_reads(self, engine):
        insert(engine, 1, values={"name": "a"}, tt=0)
        engine.update(1, {"name": "b"}, 0, tt=5)
        assert engine.version_at(1, 2, tt=3).values["name"] == "a"
        assert engine.version_at(1, 2, tt=6).values["name"] == "b"


class TestLinkValidation:
    def test_link_type_endpoints_enforced(self, engine):
        insert(engine, 1, tt=0)
        insert(engine, 2, type_name="Supplier", values={"sname": "s"},
               tt=0)
        with pytest.raises(UnknownTypeError):
            engine.link("contains", 1, 2, 0, tt=1)

    def test_link_requires_overlapping_validity(self, engine):
        insert(engine, 1, vf=0, vt=10, tt=0)
        insert(engine, 2, type_name="Component", values={"cname": "c"},
               vf=0, tt=0)
        with pytest.raises(TemporalUpdateError):
            engine.link("contains", 1, 2, 20, tt=1)

    def test_link_applies_to_each_partners_validity(self, engine):
        insert(engine, 1, vf=0, tt=0)  # part: [0, forever)
        insert(engine, 2, type_name="Component", values={"cname": "c"},
               vf=10, tt=0)  # component: [10, forever)
        engine.link("contains", 1, 2, 0, tt=1)
        # The part lists the component from 0 on (its own validity) ...
        assert engine.version_at(1, 5).targets("contains") == {2}
        # ... while the component's back reference exists from 10 on.
        assert engine.version_at(2, 15).targets("contains", "in") == {1}


class TestSelfLinks:
    def test_self_link_rejected(self, tmp_path):
        from repro import (AtomType, Attribute, DataType, DatabaseConfig,
                           LinkType, Schema, TemporalDatabase)
        from repro.errors import CardinalityError
        schema = Schema("s")
        schema.add_atom_type(AtomType("Part", [
            Attribute("name", DataType.STRING)]))
        schema.add_link_type(LinkType("part_of", "Part", "Part"))
        db = TemporalDatabase.create(str(tmp_path / "self"), schema)
        with db.transaction() as txn:
            a = txn.insert("Part", {"name": "a"}, valid_from=0)
            b = txn.insert("Part", {"name": "b"}, valid_from=0)
            # Self-referencing link TYPE is fine between distinct atoms...
            txn.link("part_of", a, b, valid_from=0)
        assert db.version_at(a, 1).targets("part_of") == {b}
        assert db.version_at(b, 1).targets("part_of", "in") == {a}
        # ... but an atom cannot be its own partner.
        with pytest.raises(CardinalityError):
            with db.transaction() as txn:
                txn.link("part_of", a, a, valid_from=0)
        db.close()

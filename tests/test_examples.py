"""Every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True,
        timeout=300)
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip()  # examples narrate what they do


def test_examples_exist():
    names = {script.stem for script in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3

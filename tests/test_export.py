"""Tests for dump/load (export, backup, and strategy migration)."""

import json

import pytest

from repro import DatabaseConfig, TemporalDatabase, VersionStrategy
from repro.errors import ReproError
from repro.tools import dump_database, dump_json, load_database, verify_database
from repro.workloads import apply_to_database, cad_schema, generate_bom, small_spec


@pytest.fixture
def populated(tmp_path):
    db = TemporalDatabase.create(str(tmp_path / "source"), cad_schema(),
                                 DatabaseConfig(
                                     strategy=VersionStrategy.CLUSTERED))
    ops, groups = generate_bom(small_spec())
    ids = apply_to_database(db, ops)
    with db.transaction() as txn:
        txn.correct(ids[groups["Part"][0]], 0, 1, {"cost": 123.0})
    db.create_attribute_index("Part", "name")
    return db, ids, groups


class TestDump:
    def test_dump_shape(self, populated):
        db, ids, groups = populated
        document = dump_database(db)
        assert document["format"] == 1
        assert len(document["atoms"]) == len(ids)
        assert "attr:Part.name" in document["indexes"]
        assert document["next_atom_id"] > max(ids.values())

    def test_dump_is_json_serializable(self, populated):
        db, _, _ = populated
        text = dump_json(db)
        round_tripped = json.loads(text)
        assert round_tripped["schema"]["name"] == "cad"

    def test_dump_includes_superseded_versions(self, populated):
        db, ids, groups = populated
        document = dump_database(db)
        part_doc = next(atom for atom in document["atoms"]
                        if atom["id"] == ids[groups["Part"][0]])
        livenesses = {raw["tt"][1] == 2**62 for raw in part_doc["versions"]}
        assert livenesses == {True, False}  # both live and superseded


class TestLoadAndMigrate:
    @pytest.mark.parametrize("target", list(VersionStrategy),
                             ids=[s.value for s in VersionStrategy])
    def test_migration_preserves_everything(self, populated, tmp_path,
                                            target):
        source, ids, groups = populated
        document = dump_database(source)
        loaded = load_database(str(tmp_path / f"target-{target.value}"),
                               document, DatabaseConfig(strategy=target))
        assert loaded.config.strategy == target
        # Bitemporal record identical per atom:
        for atom_id in ids.values():
            assert source.history(atom_id) == loaded.history(atom_id)
        # Queries agree (including the index-backed plan):
        for db in (source, loaded):
            result = db.query(
                "SELECT ALL FROM Part WHERE Part.name = 'part-0' "
                "VALID AT 1")
            assert "index(" in result.plan
            assert len(result) == 1
        # AS OF semantics preserved:
        part = ids[groups["Part"][0]]
        assert (source.version_at(part, 0, tt=0).values
                == loaded.version_at(part, 0, tt=0).values)
        assert verify_database(loaded).ok
        loaded.close()

    def test_loaded_database_accepts_new_work(self, populated, tmp_path):
        source, ids, _ = populated
        loaded = load_database(str(tmp_path / "target"),
                               dump_database(source))
        with loaded.transaction() as txn:
            fresh = txn.insert("Part", {"name": "new"}, valid_from=0)
        assert fresh > max(ids.values())  # id high-water mark respected
        # Transaction times continue past the dump's clock:
        assert loaded.version_at(fresh, 1).tt.start >= source._clock.now()
        loaded.close()

    def test_loaded_database_reopens(self, populated, tmp_path):
        source, ids, groups = populated
        path = str(tmp_path / "target")
        loaded = load_database(path, dump_database(source))
        loaded.close()
        reopened = TemporalDatabase.open(path)
        part = ids[groups["Part"][0]]
        assert reopened.version_at(part, 1) is not None
        reopened.close()

    def test_bad_format_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            load_database(str(tmp_path / "bad"), {"format": 99})


class TestCli:
    def test_dump_then_load_via_cli(self, populated, tmp_path, capsys):
        from repro.__main__ import main
        source, ids, groups = populated
        part_count = len(source.atoms_of_type("Part"))
        source_path = source.path
        source.close()
        dump_file = str(tmp_path / "dump.json")
        assert main(["dump", source_path, "-o", dump_file]) == 0
        assert main(["load", str(tmp_path / "clone"), dump_file,
                     "--strategy", "separated"]) == 0
        out = capsys.readouterr().out
        assert "loaded" in out and "separated" in out
        clone = TemporalDatabase.open(str(tmp_path / "clone"))
        assert len(clone.atoms_of_type("Part")) == part_count
        clone.close()

"""Tests for heap segments, including spanned records."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RecordNotFoundError
from repro.storage.buffer import BufferManager
from repro.storage.disk import DiskManager
from repro.storage.heap import HeapSegment


@pytest.fixture
def heap(buffer):
    return HeapSegment(buffer, "test")


class TestBasics:
    def test_insert_read(self, heap):
        rid = heap.insert(b"payload")
        assert heap.read(rid) == b"payload"

    def test_read_unknown_rid(self, heap):
        rid = heap.insert(b"x")
        heap.delete(rid)
        with pytest.raises(RecordNotFoundError):
            heap.read(rid)

    def test_many_records(self, heap):
        rids = {heap.insert(f"rec-{i}".encode()): f"rec-{i}".encode()
                for i in range(500)}
        for rid, expected in rids.items():
            assert heap.read(rid) == expected

    def test_record_count(self, heap):
        for i in range(7):
            heap.insert(bytes([i]))
        assert heap.record_count() == 7

    def test_pages_grow_with_data(self, heap):
        assert heap.page_count() == 0
        heap.insert(b"x")
        assert heap.page_count() == 1
        for _ in range(100):
            heap.insert(b"y" * 200)
        assert heap.page_count() > 1


class TestSpannedRecords:
    def test_record_larger_than_page(self, heap, buffer):
        big = bytes(range(256)) * 40  # ~10 KiB > page size
        rid = heap.insert(big)
        assert heap.read(rid) == big

    def test_huge_record(self, heap):
        huge = b"Z" * 50_000
        rid = heap.insert(huge)
        assert heap.read(rid) == huge

    def test_spanned_delete_removes_fragments(self, heap):
        big = b"A" * 20_000
        rid = heap.insert(big)
        pages_used = heap.page_count()
        heap.delete(rid)
        # All fragment space is reusable: the same record fits again
        # without growing the segment.
        heap.insert(big)
        assert heap.page_count() == pages_used

    def test_spanned_then_small_records_coexist(self, heap):
        big_rid = heap.insert(b"B" * 12_000)
        small_rids = [heap.insert(f"s{i}".encode()) for i in range(20)]
        assert heap.read(big_rid) == b"B" * 12_000
        for index, rid in enumerate(small_rids):
            assert heap.read(rid) == f"s{index}".encode()

    def test_scan_reports_spanned_record_once(self, heap):
        heap.insert(b"C" * 15_000)
        heap.insert(b"small")
        payloads = sorted(payload for _, payload in heap.scan())
        assert payloads == sorted([b"C" * 15_000, b"small"])


class TestUpdate:
    def test_update_in_place_keeps_rid(self, heap):
        rid = heap.insert(b"a" * 100)
        new_rid = heap.update(rid, b"b" * 100)
        assert new_rid == rid
        assert heap.read(rid) == b"b" * 100

    def test_update_growing_beyond_page_moves(self, heap):
        rid = heap.insert(b"a" * 100)
        new_rid = heap.update(rid, b"c" * 20_000)
        assert heap.read(new_rid) == b"c" * 20_000

    def test_update_shrinking_spanned(self, heap):
        rid = heap.insert(b"d" * 20_000)
        new_rid = heap.update(rid, b"small now")
        assert heap.read(new_rid) == b"small now"


class TestScan:
    def test_scan_empty(self, heap):
        assert list(heap.scan()) == []

    def test_scan_returns_all_live_records(self, heap):
        keep = [heap.insert(f"k{i}".encode()) for i in range(5)]
        doomed = [heap.insert(f"d{i}".encode()) for i in range(5)]
        for rid in doomed:
            heap.delete(rid)
        found = dict(heap.scan())
        assert set(found) == set(keep)

    def test_segment_reopen_from_page_list(self, tmp_path):
        disk = DiskManager(tmp_path / "h.db")
        pool = BufferManager(disk, capacity=16)
        heap = HeapSegment(pool, "seg")
        rids = [heap.insert(f"v{i}".encode() * 10) for i in range(50)]
        pages = heap.pages
        pool.flush_all()
        reopened = HeapSegment(pool, "seg", pages)
        for index, rid in enumerate(rids):
            assert reopened.read(rid) == f"v{index}".encode() * 10
        disk.close()


@settings(max_examples=30, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["insert", "delete", "update"]),
              st.integers(0, 30),
              st.binary(min_size=0, max_size=9000)),
    max_size=40))
def test_random_operations_match_model(tmp_path_factory, operations):
    """Heap behaves like a dict from rid to payload, spanning included."""
    directory = tmp_path_factory.mktemp("heapprop")
    disk = DiskManager(directory / "h.db")
    pool = BufferManager(disk, capacity=16)
    heap = HeapSegment(pool, "prop")
    model = {}
    for kind, key, payload in operations:
        if kind == "insert":
            rid = heap.insert(payload)
            assert rid not in model
            model[rid] = payload
        elif kind == "delete" and model:
            rid = sorted(model)[key % len(model)]
            heap.delete(rid)
            del model[rid]
        elif kind == "update" and model:
            rid = sorted(model)[key % len(model)]
            new_rid = heap.update(rid, payload)
            del model[rid]
            model[new_rid] = payload
    assert dict(heap.scan()) == model
    disk.close()

"""Tests for the pure bitemporal history algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import history as hist
from repro.core.version import Version
from repro.errors import TemporalUpdateError
from repro.temporal import FOREVER, Interval, TemporalElement


def v(vt_start, vt_end, tt_start, tt_end=FOREVER, **values):
    return Version(Interval(vt_start, vt_end), Interval(tt_start, tt_end),
                   values, {})


def apply_plan(versions, plan):
    versions = list(versions)
    for seq, replacement in plan.closures + plan.rewrites:
        versions[seq] = replacement
    versions.extend(plan.appends)
    return versions


class TestSelection:
    def test_live_versions_default_now(self):
        versions = [v(0, 10, 0, 5), v(0, 10, 5)]
        assert hist.live_versions(versions) == [(1, versions[1])]

    def test_live_versions_as_of(self):
        versions = [v(0, 10, 0, 5), v(0, 10, 5)]
        assert hist.live_versions(versions, tt=3) == [(0, versions[0])]
        assert hist.live_versions(versions, tt=7) == [(1, versions[1])]

    def test_version_at(self):
        versions = [v(0, 10, 0, x=1), v(10, 20, 0, x=2)]
        assert hist.version_at(versions, 5).values["x"] == 1
        assert hist.version_at(versions, 15).values["x"] == 2
        assert hist.version_at(versions, 25) is None

    def test_versions_during_sorted(self):
        versions = [v(10, 20, 0), v(0, 10, 0)]
        hits = hist.versions_during(versions, Interval(5, 15))
        assert [version.vt.start for version in hits] == [0, 10]

    def test_lifespan(self):
        versions = [v(0, 10, 0), v(20, 30, 0)]
        assert hist.lifespan(versions) == TemporalElement.of(
            Interval(0, 10), Interval(20, 30))


class TestInsertPlan:
    def test_simple_insert(self):
        plan = hist.insert_plan({"x": 1}, {}, Interval(0, FOREVER), 5)
        assert len(plan.appends) == 1
        version = plan.appends[0]
        assert version.vt == Interval(0, FOREVER)
        assert version.tt == Interval(5, FOREVER)

    def test_overlap_with_live_rejected(self):
        existing = [v(0, 10, 0)]
        with pytest.raises(TemporalUpdateError):
            hist.insert_plan({}, {}, Interval(5, 15), 1, existing)

    def test_overlap_with_closed_version_allowed(self):
        existing = [v(0, 10, 0, 1)]  # superseded belief
        plan = hist.insert_plan({}, {}, Interval(5, 15), 2, existing)
        assert len(plan.appends) == 1

    def test_adjacent_insert_allowed(self):
        existing = [v(0, 10, 0)]
        plan = hist.insert_plan({}, {}, Interval(10, 20), 1, existing)
        assert len(plan.appends) == 1


class TestRevise:
    def test_update_splits_open_version(self):
        versions = [v(0, FOREVER, 0, x=1)]
        plan = hist.revise(versions, Interval(10, FOREVER), 5,
                           lambda ver: ver.with_state({"x": 2}, ver.refs))
        after = apply_plan(versions, plan)
        hist.check_history(after)
        assert hist.version_at(after, 5).values["x"] == 1
        assert hist.version_at(after, 15).values["x"] == 2
        # Belief before the update is unchanged:
        assert hist.version_at(after, 15, tt=2).values["x"] == 1

    def test_delete_truncates(self):
        versions = [v(0, FOREVER, 0, x=1)]
        plan = hist.revise(versions, Interval(10, FOREVER), 5,
                           lambda ver: None)
        after = apply_plan(versions, plan)
        hist.check_history(after)
        assert hist.version_at(after, 5) is not None
        assert hist.version_at(after, 15) is None

    def test_window_correction_creates_three_pieces(self):
        versions = [v(0, 100, 0, x=1)]
        plan = hist.revise(versions, Interval(40, 60), 7,
                           lambda ver: ver.with_state({"x": 9}, ver.refs))
        after = apply_plan(versions, plan)
        hist.check_history(after)
        assert hist.version_at(after, 39).values["x"] == 1
        assert hist.version_at(after, 50).values["x"] == 9
        assert hist.version_at(after, 60).values["x"] == 1
        assert hist.version_at(after, 50, tt=6).values["x"] == 1

    def test_update_spanning_multiple_versions(self):
        versions = [v(0, 10, 0, x=1), v(10, 20, 0, x=2), v(20, 30, 0, x=3)]
        plan = hist.revise(versions, Interval(5, 25), 4,
                           lambda ver: ver.with_state({"x": 0}, ver.refs))
        after = apply_plan(versions, plan)
        hist.check_history(after)
        for at, expected in ((2, 1), (7, 0), (15, 0), (22, 0), (27, 3)):
            assert hist.version_at(after, at).values["x"] == expected

    def test_no_overlap_raises(self):
        versions = [v(0, 10, 0)]
        with pytest.raises(TemporalUpdateError):
            hist.revise(versions, Interval(50, 60), 1,
                        lambda ver: ver)

    def test_no_overlap_tolerated_when_requested(self):
        versions = [v(0, 10, 0)]
        plan = hist.revise(versions, Interval(50, 60), 1,
                           lambda ver: ver, require_overlap=False)
        assert plan.is_empty

    def test_same_tick_revision_rewrites_in_place(self):
        versions = [v(0, FOREVER, 5, x=1)]  # created at tt 5
        plan = hist.revise(versions, Interval(10, FOREVER), 5,
                           lambda ver: ver.with_state({"x": 2}, ver.refs))
        assert not plan.closures
        assert plan.rewrites
        after = apply_plan(versions, plan)
        hist.check_history(after)
        assert hist.version_at(after, 5).values["x"] == 1
        assert hist.version_at(after, 15).values["x"] == 2

    def test_same_tick_total_delete_leaves_stillborn(self):
        versions = [v(0, FOREVER, 5, x=1)]
        plan = hist.revise(versions, Interval(0, FOREVER), 5,
                           lambda ver: None)
        after = apply_plan(versions, plan)
        assert hist.version_at(after, 3) is None
        assert all(not version.live for version in after)


class TestCoalesce:
    def test_adjacent_identical_states_merge(self):
        versions = [v(0, 10, 0, x=1), v(10, 20, 0, x=1), v(20, 30, 0, x=2)]
        timeline = hist.coalesce_timeline(versions)
        assert [version.vt for version in timeline] == [
            Interval(0, 20), Interval(20, 30)]

    def test_gap_prevents_merge(self):
        versions = [v(0, 10, 0, x=1), v(15, 20, 0, x=1)]
        assert len(hist.coalesce_timeline(versions)) == 2


class TestInvariant:
    def test_overlapping_live_versions_detected(self):
        bad = [v(0, 10, 0), v(5, 15, 1)]
        with pytest.raises(TemporalUpdateError):
            hist.check_history(bad)

    def test_closed_overlap_allowed(self):
        good = [v(0, 10, 0, 1), v(5, 15, 1)]
        hist.check_history(good)


# -- property: random revision sequences preserve the invariant ----------------


@st.composite
def revision_steps(draw):
    kind = draw(st.sampled_from(["update", "delete", "correct"]))
    start = draw(st.integers(0, 90))
    end = draw(st.integers(start + 1, 120))
    value = draw(st.integers(0, 9))
    return kind, start, end, value


@settings(max_examples=60, deadline=None)
@given(st.lists(revision_steps(), min_size=1, max_size=12))
def test_random_revisions_keep_history_consistent(steps):
    versions = [v(0, 100, 0, x=-1)]
    tt = 1
    for kind, start, end, value in steps:
        window = Interval(start, end)
        if kind == "delete":
            transform = lambda ver: None  # noqa: E731
        else:
            transform = (lambda val: lambda ver: ver.with_state(
                {"x": val}, ver.refs))(value)
        try:
            plan = hist.revise(versions, window, tt, transform)
        except TemporalUpdateError:
            continue  # window fell into deleted validity
        versions = apply_plan(versions, plan)
        hist.check_history(versions)
        tt += 1
    # Live timeline must be internally disjoint and ordered.
    timeline = hist.versions_during(versions, Interval.always())
    for left, right in zip(timeline, timeline[1:]):
        assert left.vt.end <= right.vt.start

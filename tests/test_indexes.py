"""Tests for the index manager."""

import pytest

from repro.access.indexes import IndexManager, attribute_index_name, vt_index_name
from repro.access.keys import encode_int, encode_string
from repro.errors import AccessError


@pytest.fixture
def indexes(buffer):
    return IndexManager(buffer)


class TestTypeIndex:
    def test_register_and_enumerate(self, indexes):
        for atom_id in (5, 2, 9):
            indexes.register_atom(1, atom_id)
        indexes.register_atom(2, 100)
        assert list(indexes.atoms_of_type(1)) == [2, 5, 9]
        assert list(indexes.atoms_of_type(2)) == [100]
        assert list(indexes.atoms_of_type(3)) == []

    def test_unregister(self, indexes):
        indexes.register_atom(1, 5)
        indexes.register_atom(1, 6)
        indexes.unregister_atom(1, 5)
        assert list(indexes.atoms_of_type(1)) == [6]

    def test_types_do_not_bleed(self, indexes):
        indexes.register_atom(1, 7)
        indexes.register_atom(2, 8)
        assert list(indexes.atoms_of_type(1)) == [7]


class TestAttributeIndex:
    def test_create_and_lookup(self, indexes):
        name = indexes.create_attribute_index("Part", "cost", 8)
        assert name == attribute_index_name("Part", "cost")
        assert indexes.has_index(name)
        indexes.add_attribute_entry(name, encode_int(10), 1)
        indexes.add_attribute_entry(name, encode_int(10), 2)
        indexes.add_attribute_entry(name, encode_int(20), 3)
        assert indexes.candidate_atoms_eq(name, encode_int(10)) == [1, 2]
        assert indexes.candidate_atoms_eq(name, encode_int(99)) == []

    def test_duplicate_create_rejected(self, indexes):
        indexes.create_attribute_index("Part", "cost", 8)
        with pytest.raises(AccessError):
            indexes.create_attribute_index("Part", "cost", 8)

    def test_entries_idempotent_per_pair(self, indexes):
        name = indexes.create_attribute_index("Part", "cost", 8)
        for _ in range(5):
            indexes.add_attribute_entry(name, encode_int(10), 1)
        assert indexes.candidate_atoms_eq(name, encode_int(10)) == [1]

    def test_range_candidates(self, indexes):
        name = indexes.create_attribute_index("Part", "cost", 8)
        for value, atom_id in ((5, 1), (10, 2), (15, 3), (20, 4)):
            indexes.add_attribute_entry(name, encode_int(value), atom_id)
        got = indexes.candidate_atoms_range(name, encode_int(10),
                                            encode_int(20))
        assert got == [2, 3]
        got = indexes.candidate_atoms_range(name, encode_int(10),
                                            encode_int(20),
                                            hi_inclusive=True)
        assert got == [2, 3, 4]

    def test_range_unbounded(self, indexes):
        name = indexes.create_attribute_index("Part", "cost", 8)
        for value, atom_id in ((5, 1), (10, 2)):
            indexes.add_attribute_entry(name, encode_int(value), atom_id)
        assert indexes.candidate_atoms_range(name, None, None) == [1, 2]

    def test_range_dedupes_atoms(self, indexes):
        name = indexes.create_attribute_index("Part", "cost", 8)
        indexes.add_attribute_entry(name, encode_int(5), 1)
        indexes.add_attribute_entry(name, encode_int(7), 1)
        assert indexes.candidate_atoms_range(name, None, None) == [1]

    def test_string_keys(self, indexes):
        name = indexes.create_attribute_index("Part", "name", 16)
        indexes.add_attribute_entry(name, encode_string("wheel"), 1)
        indexes.add_attribute_entry(name, encode_string("frame"), 2)
        assert indexes.candidate_atoms_eq(name, encode_string("wheel")) == [1]

    def test_unknown_index_rejected(self, indexes):
        with pytest.raises(AccessError):
            indexes.candidate_atoms_eq("attr:No.idx", encode_int(1))


class TestValidTimeIndex:
    def test_changed_during(self, indexes):
        name = indexes.create_vt_index("Part")
        assert name == vt_index_name("Part")
        indexes.add_vt_entry(name, 100, 1)
        indexes.add_vt_entry(name, 150, 2)
        indexes.add_vt_entry(name, 250, 1)
        assert indexes.atoms_changed_during(name, 100, 200) == [1, 2]
        assert indexes.atoms_changed_during(name, 200, 300) == [1]
        assert indexes.atoms_changed_during(name, 300, 400) == []

    def test_boundaries_half_open(self, indexes):
        name = indexes.create_vt_index("Part")
        indexes.add_vt_entry(name, 100, 1)
        assert indexes.atoms_changed_during(name, 100, 101) == [1]
        assert indexes.atoms_changed_during(name, 99, 100) == []


class TestPersistence:
    def test_state_round_trip(self, buffer):
        manager = IndexManager(buffer)
        manager.register_atom(1, 42)
        name = manager.create_attribute_index("Part", "cost", 8)
        manager.add_attribute_entry(name, encode_int(5), 42)
        state = manager.persist_state()
        reopened = IndexManager(buffer, state)
        assert list(reopened.atoms_of_type(1)) == [42]
        assert reopened.candidate_atoms_eq(name, encode_int(5)) == [42]
        assert sorted(reopened.index_names()) == sorted(manager.index_names())

    def test_check_all(self, indexes):
        for i in range(200):
            indexes.register_atom(i % 3, i)
        indexes.check_all()

"""End-to-end integration scenarios across the whole stack."""

import pytest

from repro import DatabaseConfig, TemporalDatabase, VersionStrategy
from repro.core import history as hist
from repro.temporal import FOREVER, Interval
from repro.workloads import apply_to_database, cad_schema, generate_bom, small_spec


class TestFullLifecycle:
    def test_workload_write_query_reopen_query(self, tmp_path, strategy):
        """Load a workload, query, close, reopen, query again."""
        path = str(tmp_path / "lifecycle")
        db = TemporalDatabase.create(path, cad_schema(),
                                     DatabaseConfig(strategy=strategy))
        ops, groups = generate_bom(small_spec())
        ids = apply_to_database(db, ops)
        first = db.query(
            "SELECT ALL FROM Part.contains.Component VALID AT 1")
        count_before = len(first)
        assert count_before == len(groups["Part"])
        db.close()

        reopened = TemporalDatabase.open(path)
        again = reopened.query(
            "SELECT ALL FROM Part.contains.Component VALID AT 1")
        assert len(again) == count_before
        for entry_a, entry_b in zip(first, again):
            assert entry_a.root_id == entry_b.root_id
            assert entry_a.molecule.same_composition_as(entry_b.molecule)
        reopened.close()

    def test_indexes_survive_reopen(self, tmp_path, cad_schema):
        path = str(tmp_path / "idx")
        db = TemporalDatabase.create(path, cad_schema)
        with db.transaction() as txn:
            txn.insert("Part", {"name": "wheel", "cost": 5.0},
                       valid_from=0)
        db.create_attribute_index("Part", "name")
        db.close()
        reopened = TemporalDatabase.open(path)
        result = reopened.query(
            "SELECT ALL FROM Part WHERE Part.name = 'wheel' VALID AT 1")
        assert "index(Part.name" in result.plan
        assert len(result) == 1
        # New inserts keep maintaining the reopened index.
        with reopened.transaction() as txn:
            txn.insert("Part", {"name": "wheel", "cost": 7.0},
                       valid_from=0)
        result = reopened.query(
            "SELECT ALL FROM Part WHERE Part.name = 'wheel' VALID AT 1")
        assert len(result) == 2
        reopened.close()

    def test_histories_stay_invariant_after_heavy_churn(self, tmp_path,
                                                        strategy):
        """Hundreds of mixed operations never break the bitemporal
        invariant of any atom."""
        db = TemporalDatabase.create(str(tmp_path / "churn"), cad_schema(),
                                     DatabaseConfig(strategy=strategy))
        ops, groups = generate_bom(small_spec())
        ids = apply_to_database(db, ops)
        part = ids[groups["Part"][0]]
        with db.transaction() as txn:
            txn.correct(part, 0, 1, {"cost": 1.23})
            txn.delete(part, valid_from=100)
            txn.insert("Part", {"name": "reborn"}, valid_from=200,
                       atom_id=part)
        for handle, atom_id in ids.items():
            hist.check_history(db.history(atom_id))
        db.close()

    def test_query_matches_manual_molecule_walk(self, tmp_path, strategy):
        db = TemporalDatabase.create(str(tmp_path / "walk"), cad_schema(),
                                     DatabaseConfig(strategy=strategy))
        ops, groups = generate_bom(small_spec())
        ids = apply_to_database(db, ops)
        result = db.query(
            "SELECT ALL FROM Part.contains.Component VALID AT 2")
        for entry in result:
            manual = db.molecule_at(entry.root_id,
                                    "Part.contains.Component", 2)
            assert manual.same_composition_as(entry.molecule)
        db.close()

    def test_checkpoint_under_load_then_crash(self, tmp_path, strategy):
        path = str(tmp_path / "ckload")
        db = TemporalDatabase.create(path, cad_schema(),
                                     DatabaseConfig(strategy=strategy))
        ops, groups = generate_bom(small_spec())
        split = len(ops) // 2
        apply_to_database(db, ops[:split])
        db.checkpoint()
        ids = {}
        # The second half references handles created in the first half;
        # replay everything against a fresh handle map instead: use new
        # atoms only.
        with db.transaction() as txn:
            fresh = txn.insert("Part", {"name": "late", "cost": 3.0},
                               valid_from=0)
        db._wal._file.flush()
        db._disk._file.flush()
        del db  # crash
        recovered = TemporalDatabase.open(path)
        assert recovered.last_recovery is not None
        assert recovered.version_at(fresh, 1).values["name"] == "late"
        recovered.close()


class TestConcurrencyIntegration:
    def test_serial_transactions_interleaved_handles(self, db):
        """Two logical activity streams interleaving transactions."""
        txn_a = db.begin()
        part_a = txn_a.insert("Part", {"name": "a"}, valid_from=0)
        txn_a.commit()
        txn_b = db.begin()
        part_b = txn_b.insert("Part", {"name": "b"}, valid_from=0)
        txn_c = db.begin()
        part_c = txn_c.insert("Part", {"name": "c"}, valid_from=0)
        txn_b.commit()
        txn_c.abort()
        names = {db.version_at(p, 1).values["name"]
                 for p in (part_a, part_b)
                 if db.version_at(p, 1) is not None}
        assert names == {"a", "b"}
        assert db.version_at(part_c, 1) is None

    def test_threaded_writers_disjoint_atoms(self, tmp_path, cad_schema):
        import threading
        db = TemporalDatabase.create(str(tmp_path / "threads"), cad_schema,
                                     DatabaseConfig(buffer_pages=128))
        errors = []

        def writer(tag):
            try:
                for i in range(10):
                    with db.transaction() as txn:
                        txn.insert("Part", {"name": f"{tag}-{i}"},
                                   valid_from=0)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in ("t1", "t2", "t3")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(db.atoms_of_type("Part")) == 30
        db.close()

"""Cross-feature interplay tests: the combinations that break systems."""

import pytest

from repro import DatabaseConfig, TemporalDatabase
from repro.tools import vacuum_superseded, verify_database
from repro.txn.wal import LogRecordType, WriteAheadLog


def crash(db):
    db._wal._file.flush()
    db._disk._file.flush()


class TestVacuumRecoveryInterplay:
    def test_crash_after_vacuum_recovers_cleanly(self, tmp_path,
                                                 cad_schema):
        """Vacuum checkpoints, so a crash after it replays nothing and
        loses nothing."""
        path = str(tmp_path / "vr")
        db = TemporalDatabase.create(path, cad_schema)
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "a", "cost": 1.0},
                              valid_from=0)
        with db.transaction() as txn:
            txn.update(part, {"cost": 2.0}, valid_from=10)
        vacuum_superseded(db, db._clock.now())
        crash(db)
        recovered = TemporalDatabase.open(path)
        assert recovered.version_at(part, 15).values["cost"] == 2.0
        assert all(version.live for version in recovered.history(part))
        assert verify_database(recovered).ok
        recovered.close()

    def test_work_after_vacuum_survives_crash(self, tmp_path, cad_schema):
        path = str(tmp_path / "vw")
        db = TemporalDatabase.create(path, cad_schema)
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "a", "cost": 1.0},
                              valid_from=0)
        vacuum_superseded(db, db._clock.now())
        with db.transaction() as txn:
            txn.update(part, {"cost": 3.0}, valid_from=20)
        crash(db)
        recovered = TemporalDatabase.open(path)
        assert recovered.last_recovery["operations"] == 1
        assert recovered.version_at(part, 25).values["cost"] == 3.0
        recovered.close()


class TestIndexRecoveryInterplay:
    def test_index_maintained_through_replay(self, tmp_path, cad_schema):
        """Operations replayed after a crash must maintain indexes the
        checkpoint already knew about."""
        path = str(tmp_path / "ir")
        db = TemporalDatabase.create(path, cad_schema)
        db.create_attribute_index("Part", "name")  # checkpoints
        with db.transaction() as txn:
            txn.insert("Part", {"name": "replayed"}, valid_from=0)
        crash(db)
        recovered = TemporalDatabase.open(path)
        result = recovered.query(
            "SELECT ALL FROM Part WHERE Part.name = 'replayed' VALID AT 1")
        assert "index(" in result.plan
        assert len(result) == 1
        recovered.close()


class TestWalStress:
    def test_large_operation_payloads(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "big.log", sync_on_commit=False)
        big_value = "v" * 100_000
        lsn = wal.append(LogRecordType.OPERATION, 1,
                         {"op": "insert", "values": {"name": big_value}})
        wal.flush(sync=False)
        (record,) = wal.read_all(after_lsn=lsn - 1)
        assert record.payload["values"]["name"] == big_value
        wal.close()

    def test_thousands_of_records(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "many.log", sync_on_commit=False)
        for index in range(5000):
            wal.append(LogRecordType.OPERATION, index % 7, {"i": index})
        wal.flush(sync=False)
        assert sum(1 for _ in wal.read_all()) == 5000
        tail = list(wal.read_all(after_lsn=4990))
        assert [record.payload["i"] for record in tail] == list(
            range(4990, 5000))
        wal.close()

    def test_big_values_survive_crash_and_replay(self, tmp_path,
                                                 cad_schema):
        path = str(tmp_path / "bigvals")
        db = TemporalDatabase.create(path, cad_schema)
        essay = "temporal " * 3000  # spans pages AND bloats the log
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": essay}, valid_from=0)
        crash(db)
        recovered = TemporalDatabase.open(path)
        assert recovered.version_at(part, 1).values["name"] == essay
        recovered.close()


class TestExportInterplay:
    def test_dump_after_vacuum_loads(self, tmp_path, cad_schema):
        from repro.tools import dump_database, load_database
        db = TemporalDatabase.create(str(tmp_path / "src"), cad_schema)
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "a", "cost": 1.0},
                              valid_from=0)
        with db.transaction() as txn:
            txn.update(part, {"cost": 2.0}, valid_from=10)
        vacuum_superseded(db, db._clock.now())
        clone = load_database(str(tmp_path / "dst"), dump_database(db))
        assert clone.version_at(part, 15).values["cost"] == 2.0
        assert verify_database(clone).ok
        clone.close()
        db.close()

"""Tests for half-open interval algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidIntervalError
from repro.temporal import FOREVER, TMIN, Interval

#: Reasonable chronon range for property tests (keeps shrinking readable).
chronons = st.integers(min_value=-1000, max_value=1000)


@st.composite
def intervals(draw):
    start = draw(chronons)
    end = draw(st.integers(min_value=start + 1, max_value=1002))
    return Interval(start, end)


class TestConstruction:
    def test_valid_interval(self):
        interval = Interval(1, 5)
        assert interval.start == 1 and interval.end == 5

    def test_empty_interval_rejected(self):
        with pytest.raises(InvalidIntervalError):
            Interval(5, 5)

    def test_inverted_interval_rejected(self):
        with pytest.raises(InvalidIntervalError):
            Interval(6, 5)

    def test_forever_cannot_start(self):
        with pytest.raises(Exception):
            Interval(FOREVER, FOREVER)

    def test_tmin_cannot_end(self):
        with pytest.raises(Exception):
            Interval(TMIN, TMIN)

    def test_instant(self):
        assert Interval.instant(7) == Interval(7, 8)

    def test_from_onwards(self):
        interval = Interval.from_onwards(3)
        assert interval.start == 3 and interval.is_open_ended

    def test_always(self):
        always = Interval.always()
        assert always.start == TMIN and always.end == FOREVER


class TestPredicates:
    def test_contains_boundaries(self):
        interval = Interval(2, 5)
        assert interval.contains(2)
        assert interval.contains(4)
        assert not interval.contains(5)  # half-open
        assert not interval.contains(1)

    def test_contains_interval(self):
        assert Interval(0, 10).contains_interval(Interval(2, 5))
        assert Interval(0, 10).contains_interval(Interval(0, 10))
        assert not Interval(0, 10).contains_interval(Interval(5, 11))

    def test_overlaps(self):
        assert Interval(0, 5).overlaps(Interval(4, 8))
        assert not Interval(0, 5).overlaps(Interval(5, 8))  # meets, no share

    def test_meets(self):
        assert Interval(0, 5).meets(Interval(5, 9))
        assert not Interval(0, 5).meets(Interval(6, 9))

    def test_adjacent_or_overlapping(self):
        assert Interval(0, 5).is_adjacent_or_overlapping(Interval(5, 7))
        assert Interval(0, 5).is_adjacent_or_overlapping(Interval(3, 7))
        assert not Interval(0, 5).is_adjacent_or_overlapping(Interval(6, 7))

    def test_precedes_and_follows(self):
        interval = Interval(3, 6)
        assert interval.precedes(6)
        assert not interval.precedes(5)
        assert interval.follows(2)
        assert not interval.follows(3)


class TestAlgebra:
    def test_duration(self):
        assert Interval(2, 7).duration() == 5

    def test_intersect(self):
        assert Interval(0, 5).intersect(Interval(3, 9)) == Interval(3, 5)
        assert Interval(0, 5).intersect(Interval(5, 9)) is None

    def test_union_overlapping(self):
        assert Interval(0, 5).union(Interval(3, 9)) == Interval(0, 9)

    def test_union_adjacent(self):
        assert Interval(0, 5).union(Interval(5, 9)) == Interval(0, 9)

    def test_union_disjoint_rejected(self):
        with pytest.raises(InvalidIntervalError):
            Interval(0, 5).union(Interval(6, 9))

    def test_difference_no_overlap(self):
        assert list(Interval(0, 5).difference(Interval(5, 9))) == [
            Interval(0, 5)]

    def test_difference_split(self):
        assert list(Interval(0, 10).difference(Interval(3, 6))) == [
            Interval(0, 3), Interval(6, 10)]

    def test_difference_swallowed(self):
        assert list(Interval(3, 6).difference(Interval(0, 10))) == []

    def test_clamp_end(self):
        assert Interval(0, 10).clamp_end(5) == Interval(0, 5)
        assert Interval(0, 10).clamp_end(15) == Interval(0, 10)
        assert Interval(5, 10).clamp_end(5) is None

    def test_clamp_start(self):
        assert Interval(0, 10).clamp_start(5) == Interval(5, 10)
        assert Interval(0, 10).clamp_start(-5) == Interval(0, 10)
        assert Interval(0, 5).clamp_start(5) is None

    def test_str(self):
        assert str(Interval(1, FOREVER)) == "[1, FOREVER)"


class TestOrdering:
    def test_sorts_by_start_then_end(self):
        run = sorted([Interval(3, 4), Interval(1, 9), Interval(1, 2)])
        assert run == [Interval(1, 2), Interval(1, 9), Interval(3, 4)]


# -- properties --------------------------------------------------------------


@given(intervals(), intervals())
def test_overlap_is_symmetric(a, b):
    assert a.overlaps(b) == b.overlaps(a)


@given(intervals(), intervals())
def test_intersection_is_contained_in_both(a, b):
    common = a.intersect(b)
    if common is not None:
        assert a.contains_interval(common)
        assert b.contains_interval(common)
    else:
        assert not a.overlaps(b)


@given(intervals(), intervals())
def test_difference_covers_exactly_non_overlap(a, b):
    pieces = list(a.difference(b))
    covered = sum(piece.duration() for piece in pieces)
    overlap = a.intersect(b)
    expected = a.duration() - (overlap.duration() if overlap else 0)
    assert covered == expected
    for piece in pieces:
        assert a.contains_interval(piece)
        assert not piece.overlaps(b)


@given(intervals(), intervals())
def test_union_when_defined_covers_both(a, b):
    if a.is_adjacent_or_overlapping(b):
        union = a.union(b)
        assert union.contains_interval(a)
        assert union.contains_interval(b)
        assert union.duration() <= a.duration() + b.duration()


@given(intervals(), chronons)
def test_contains_matches_bounds(interval, at):
    assert interval.contains(at) == (interval.start <= at < interval.end)

"""Tests for order-preserving key encoding."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.access.keys import (
    decode_int,
    encode_bool,
    encode_composite,
    encode_float,
    encode_int,
    encode_string,
    string_prefix_is_lossy,
)
from repro.errors import KeyEncodingError


class TestIntKeys:
    def test_round_trip(self):
        for value in (0, 1, -1, 2**62, -(2**62), 2**63 - 1, -(2**63)):
            assert decode_int(encode_int(value)) == value

    def test_width(self):
        assert len(encode_int(0)) == 8

    def test_out_of_range(self):
        with pytest.raises(KeyEncodingError):
            encode_int(2**63)

    def test_bool_rejected(self):
        with pytest.raises(KeyEncodingError):
            encode_int(True)

    def test_non_int_rejected(self):
        with pytest.raises(KeyEncodingError):
            encode_int("5")


class TestFloatKeys:
    def test_width(self):
        assert len(encode_float(1.5)) == 8

    def test_negative_zero_equals_zero_ordering(self):
        # -0.0 and 0.0 may encode differently but must stay adjacent:
        # nothing sorts between them.
        assert encode_float(-0.0) <= encode_float(0.0)
        assert encode_float(-1e-300) < encode_float(-0.0)
        assert encode_float(0.0) < encode_float(1e-300)

    def test_int_accepted(self):
        assert encode_float(2) == encode_float(2.0)

    def test_bool_rejected(self):
        with pytest.raises(KeyEncodingError):
            encode_float(True)


class TestBoolKeys:
    def test_order(self):
        assert encode_bool(False) < encode_bool(True)

    def test_non_bool_rejected(self):
        with pytest.raises(KeyEncodingError):
            encode_bool(1)


class TestStringKeys:
    def test_fixed_width(self):
        assert len(encode_string("a")) == 16
        assert len(encode_string("a" * 100)) == 16

    def test_short_strings_not_lossy(self):
        assert not string_prefix_is_lossy("hello")

    def test_long_strings_lossy(self):
        assert string_prefix_is_lossy("a" * 17)

    def test_trailing_nul_lossy(self):
        assert string_prefix_is_lossy("abc\x00")

    def test_custom_width(self):
        assert len(encode_string("abcdef", width=4)) == 4
        assert string_prefix_is_lossy("abcdef", width=4)

    def test_non_str_rejected(self):
        with pytest.raises(KeyEncodingError):
            encode_string(42)


class TestComposite:
    def test_concatenation(self):
        key = encode_composite(encode_int(1), encode_int(2))
        assert len(key) == 16
        assert key == encode_int(1) + encode_int(2)

    def test_composite_order_is_lexicographic(self):
        a = encode_composite(encode_int(1), encode_int(99))
        b = encode_composite(encode_int(2), encode_int(0))
        assert a < b


# -- order-preservation properties ----------------------------------------------


@given(st.integers(min_value=-(2**63), max_value=2**63 - 1),
       st.integers(min_value=-(2**63), max_value=2**63 - 1))
def test_int_encoding_preserves_order(a, b):
    assert (encode_int(a) < encode_int(b)) == (a < b)


@given(st.floats(allow_nan=False, width=64),
       st.floats(allow_nan=False, width=64))
def test_float_encoding_preserves_order(a, b):
    if a < b:
        assert encode_float(a) < encode_float(b)
    elif b < a:
        assert encode_float(b) < encode_float(a)


@given(st.text(alphabet=st.characters(min_codepoint=1, max_codepoint=127),
               max_size=12),
       st.text(alphabet=st.characters(min_codepoint=1, max_codepoint=127),
               max_size=12))
def test_short_ascii_string_encoding_preserves_order(a, b):
    assert (encode_string(a) < encode_string(b)) == (a < b)


@given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
def test_int_round_trip(value):
    assert decode_int(encode_int(value)) == value

"""The write path's live-version machinery.

Mutation planning only ever reads transaction-time-open versions, so the
stores expose ``read_live``/``read_versions`` and the engine keeps a
per-atom live-set cache that ``_apply_plan`` repairs in place.  These
tests pin the store contracts, prove the cache never drifts from store
truth under mixed operations (including undo), and guard the headline
property: update cost no longer scans the closed history.
"""

import random

import pytest

from repro.errors import StorageError
from repro.storage.strategies import StoredVersion
from repro.temporal import FOREVER


@pytest.fixture
def engine(db):
    return db.engine


def insert(engine, atom_id, vf=0, vt=FOREVER, tt=0, **values):
    values = values or {"name": f"atom-{atom_id}"}
    return engine.insert("Part", values, vf, vt, tt, atom_id)


def store_live(engine, atom_id):
    """Live (seq, version) pairs read straight off the store."""
    return [(seq, v) for seq, v in enumerate(engine.all_versions(atom_id))
            if v.live]


class TestStoreContract:
    """read_live / read_versions agree with read_all on every strategy."""

    def _seed(self, engine):
        insert(engine, 1, tt=0)
        engine.update(1, {"cost": 1.0}, 10, tt=1)
        engine.update(1, {"cost": 2.0}, 20, tt=2)
        engine.delete(1, 5, tt=3, valid_to=8)
        engine.correct(1, 12, 15, {"cost": 9.0}, tt=4)

    def test_read_live_matches_filtered_read_all(self, engine):
        self._seed(engine)
        store = engine.store
        expected = [(seq, sv) for seq, sv in enumerate(store.read_all(1))
                    if sv.live]
        assert sorted(store.read_live(1)) == sorted(expected)

    def test_read_versions_matches_read_all(self, engine):
        self._seed(engine)
        store = engine.store
        full = store.read_all(1)
        seqs = [0, len(full) - 1, len(full) // 2]
        got = store.read_versions(1, seqs)
        assert got == {seq: full[seq] for seq in seqs}

    def test_read_versions_unknown_seq(self, engine):
        insert(engine, 1, tt=0)
        with pytest.raises(StorageError):
            engine.store.read_versions(1, [5])

    def test_read_live_excludes_fully_deleted(self, engine):
        insert(engine, 1, tt=0)
        engine.delete(1, 0, tt=1)
        assert engine.store.read_live(1) == []


class TestLiveSetCache:
    def test_live_pairs_matches_store_after_each_op(self, engine):
        rng = random.Random(7)
        insert(engine, 1, tt=0)
        tt = 1
        for _ in range(60):
            op = rng.randrange(4)
            start = rng.randrange(0, 90)
            try:
                if op == 0:
                    engine.update(1, {"cost": float(tt)}, start, tt)
                elif op == 1:
                    engine.delete(1, start, tt, valid_to=start + 5)
                elif op == 2:
                    engine.correct(1, start, start + 10,
                                   {"cost": float(-tt)}, tt)
                else:
                    undos = engine.update(1, {"cost": 0.5}, start, tt)
                    for undo in reversed(undos):
                        undo()
            except Exception:  # revision may legitimately find no overlap
                pass
            tt += 1
            assert engine.live_pairs(1) == store_live(engine, 1)

    def test_cache_survives_valid_time_splits(self, engine):
        # A mid-window update splits validity into three live pieces;
        # the repaired cache must hold all of them at the right seqs.
        insert(engine, 1, tt=0)
        engine.update(1, {"cost": 1.0}, 10, tt=1, valid_to=20)
        assert engine.live_pairs(1) == store_live(engine, 1)
        assert len(engine.live_pairs(1)) == 3
        engine.update(1, {"cost": 2.0}, 14, tt=2, valid_to=16)
        assert engine.live_pairs(1) == store_live(engine, 1)

    def test_undo_invalidates_cache(self, engine):
        insert(engine, 1, tt=0)
        engine.live_pairs(1)
        undos = engine.update(1, {"cost": 3.0}, 10, tt=1)
        for undo in reversed(undos):
            undo()
        assert engine.live_pairs(1) == store_live(engine, 1)
        assert [v.values.get("cost") for _, v in engine.live_pairs(1)] \
            == [None]

    def test_links_maintain_both_sides(self, engine):
        insert(engine, 1, tt=0)
        engine.insert("Component", {"cname": "c"}, 0, FOREVER, 0, 2)
        engine.live_pairs(1), engine.live_pairs(2)
        engine.link("contains", 1, 2, 5, tt=1)
        assert engine.live_pairs(1) == store_live(engine, 1)
        assert engine.live_pairs(2) == store_live(engine, 2)
        engine.unlink("contains", 1, 2, 5, tt=2)
        assert engine.live_pairs(1) == store_live(engine, 1)
        assert engine.live_pairs(2) == store_live(engine, 2)

    def test_updates_do_not_scan_closed_history(self, engine):
        insert(engine, 1, tt=0)
        for n in range(40):
            engine.update(1, {"cost": float(n)}, 0, tt=n + 1)
        scanned = engine.metrics.counter("engine.versions_scanned")
        before = scanned.value
        for n in range(10):
            engine.update(1, {"cost": float(100 + n)}, 0, tt=50 + n)
        # One live version per update; a full-history planner would
        # scan 40+ versions each time.
        assert scanned.value - before <= 10

    def test_reopen_after_cached_updates(self, tmp_path, cad_schema,
                                         strategy):
        from repro import DatabaseConfig, TemporalDatabase
        path = str(tmp_path / "reopen")
        db = TemporalDatabase.create(
            path, cad_schema,
            DatabaseConfig(strategy=strategy, buffer_pages=64))
        engine = db.engine
        insert(engine, 1, tt=0)
        for n in range(5):
            engine.update(1, {"cost": float(n)}, 0, tt=n + 1)
        expected = store_live(engine, 1)
        db.checkpoint()
        db.close()
        db = TemporalDatabase.open(path)
        assert db.engine.live_pairs(1) == expected
        db.close()


class TestWalSeekIndex:
    def test_read_all_after_lsn_with_seek_marks(self, tmp_path):
        from repro.txn.wal import LogRecordType, WriteAheadLog
        wal = WriteAheadLog(str(tmp_path / "wal.log"))
        body = {"pad": "x" * 512}
        lsns = [wal.append(LogRecordType.OPERATION, 1, dict(body))
                for _ in range(200)]
        for after in (0, lsns[0], lsns[57], lsns[-2], lsns[-1]):
            got = [r.lsn for r in wal.read_all(after)]
            assert got == [lsn for lsn in lsns if lsn > after]
        wal.close()

    def test_marks_cleared_on_truncate(self, tmp_path):
        from repro.txn.wal import LogRecordType, WriteAheadLog
        wal = WriteAheadLog(str(tmp_path / "wal.log"))
        for _ in range(50):
            wal.append(LogRecordType.OPERATION, 1, {"pad": "y" * 512})
        wal.truncate()
        lsn = wal.append(LogRecordType.OPERATION, 2, {"op": "after"})
        assert [r.lsn for r in wal.read_all(0)] == [lsn]
        wal.close()


def test_replica_apply_flushes_pending_indexes(tmp_path, cad_schema):
    """Replay on a replica drains the index write-behind buffers.

    No local transaction ever commits on a replica, so without the
    applier-side flush the pending sets grow for the life of the
    process and every index probe pays a linear merge over them.
    """
    from tests.test_replication import Cluster, wait_until

    cluster = Cluster(tmp_path, cad_schema, replicas=1)
    try:
        with cluster.pdb.transaction() as txn:
            atom = txn.insert("Part", {"name": "p", "cost": 1.0},
                              valid_from=0)
        with cluster.pdb.transaction() as txn:
            txn.update(atom, {"cost": 2.0}, valid_from=5)
        cluster.wait_caught_up()
        rdb = cluster.rdbs[0]
        wait_until(lambda: not rdb.indexes._pending_attr
                   and not rdb.indexes._pending_vt,
                   message="pending index buffers to drain")
        assert rdb.engine.version_at(atom, 10).values["cost"] == 2.0
    finally:
        cluster.close()

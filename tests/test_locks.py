"""Tests for the lock manager."""

import threading
import time

import pytest

from repro.errors import DeadlockError, LockTimeoutError
from repro.txn.locks import LockManager, LockMode


@pytest.fixture
def locks():
    return LockManager(timeout=2.0)


class TestCompatibility:
    def test_shared_locks_coexist(self, locks):
        locks.acquire(1, "r", LockMode.SHARED)
        locks.acquire(2, "r", LockMode.SHARED)
        assert set(locks.holders_of("r")) == {1, 2}

    def test_exclusive_excludes(self):
        # A second transaction cannot get any lock on r within timeout.
        quick = LockManager(timeout=0.05)
        quick.acquire(1, "r", LockMode.EXCLUSIVE)
        with pytest.raises(LockTimeoutError):
            quick.acquire(2, "r", LockMode.SHARED)
        with pytest.raises(LockTimeoutError):
            quick.acquire(3, "r", LockMode.EXCLUSIVE)

    def test_reacquire_is_idempotent(self, locks):
        locks.acquire(1, "r", LockMode.SHARED)
        locks.acquire(1, "r", LockMode.SHARED)
        locks.acquire(1, "r", LockMode.EXCLUSIVE)  # upgrade, sole holder
        locks.acquire(1, "r", LockMode.SHARED)     # X already covers S
        assert locks.holders_of("r") == {1: LockMode.EXCLUSIVE}

    def test_release_all(self, locks):
        locks.acquire(1, "a", LockMode.EXCLUSIVE)
        locks.acquire(1, "b", LockMode.SHARED)
        locks.release_all(1)
        assert locks.locks_held(1) == set()
        locks.acquire(2, "a", LockMode.EXCLUSIVE)  # no longer blocked

    def test_release_unknown_txn_is_noop(self, locks):
        locks.release_all(99)


class TestBlocking:
    def test_waiter_proceeds_after_release(self, locks):
        locks.acquire(1, "r", LockMode.EXCLUSIVE)
        acquired = threading.Event()

        def waiter():
            locks.acquire(2, "r", LockMode.EXCLUSIVE)
            acquired.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        assert not acquired.is_set()
        locks.release_all(1)
        thread.join(timeout=2)
        assert acquired.is_set()
        locks.release_all(2)

    def test_timeout(self):
        locks = LockManager(timeout=0.05)
        locks.acquire(1, "r", LockMode.EXCLUSIVE)
        with pytest.raises(LockTimeoutError):
            locks.acquire(2, "r", LockMode.EXCLUSIVE)


class TestDeadlock:
    def test_two_party_deadlock_detected(self, locks):
        locks.acquire(1, "a", LockMode.EXCLUSIVE)
        locks.acquire(2, "b", LockMode.EXCLUSIVE)
        failed = []

        def t1():
            try:
                locks.acquire(1, "b", LockMode.EXCLUSIVE)
            except DeadlockError:
                failed.append(1)
                locks.release_all(1)

        thread = threading.Thread(target=t1)
        thread.start()
        time.sleep(0.05)
        # Transaction 2 now waits for "a" held by 1 while 1 waits for "b":
        # one of them must be told off immediately.
        try:
            locks.acquire(2, "a", LockMode.EXCLUSIVE)
        except DeadlockError:
            failed.append(2)
            locks.release_all(2)
        thread.join(timeout=2)
        assert failed  # at least one victim
        locks.release_all(1)
        locks.release_all(2)

    def test_self_upgrade_is_not_deadlock(self, locks):
        locks.acquire(1, "r", LockMode.SHARED)
        locks.acquire(1, "r", LockMode.EXCLUSIVE)

    def test_upgrade_deadlock_between_two_readers(self, locks):
        """Both hold S and want X: the second requester must be refused."""
        locks.acquire(1, "r", LockMode.SHARED)
        locks.acquire(2, "r", LockMode.SHARED)
        outcome = []

        def upgrader():
            try:
                locks.acquire(1, "r", LockMode.EXCLUSIVE)
                outcome.append(("ok", 1))
            except DeadlockError:
                outcome.append(("dead", 1))
                locks.release_all(1)

        thread = threading.Thread(target=upgrader)
        thread.start()
        time.sleep(0.05)
        try:
            locks.acquire(2, "r", LockMode.EXCLUSIVE)
            outcome.append(("ok", 2))
        except DeadlockError:
            outcome.append(("dead", 2))
            locks.release_all(2)
        thread.join(timeout=2)
        assert ("dead", 2) in outcome or ("dead", 1) in outcome
        locks.release_all(1)
        locks.release_all(2)


class TestConcurrency:
    def test_many_threads_counter_integrity(self, locks):
        """X locks serialize increments of an unprotected counter."""
        counter = {"value": 0}

        def worker(txn_id):
            for _ in range(50):
                locks.acquire(txn_id, "counter", LockMode.EXCLUSIVE)
                current = counter["value"]
                time.sleep(0)  # encourage interleaving
                counter["value"] = current + 1
                locks.release_all(txn_id)

        threads = [threading.Thread(target=worker, args=(txn_id,))
                   for txn_id in range(1, 9)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter["value"] == 400

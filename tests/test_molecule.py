"""Tests for molecule types: parsing, validation, structure."""

import pytest

from repro import AtomType, Attribute, DataType, LinkType, MoleculeType, Schema
from repro.core.molecule import MoleculeEdge
from repro.errors import (
    AnalysisError,
    InvalidMoleculeTypeError,
    ParseError,
    UnknownTypeError,
)


@pytest.fixture
def schema(cad_schema):
    return cad_schema


class TestParsing:
    def test_single_type(self, schema):
        mtype = MoleculeType.parse("Part", schema)
        assert mtype.root == "Part"
        assert mtype.edges == []

    def test_path(self, schema):
        mtype = MoleculeType.parse("Part.contains.Component", schema)
        assert mtype.root == "Part"
        assert mtype.edges == [MoleculeEdge("Part", "contains",
                                            "Component", True)]

    def test_deep_path(self, schema):
        mtype = MoleculeType.parse(
            "Part.contains.Component.supplied_by.Supplier", schema)
        assert [e.child for e in mtype.edges] == ["Component", "Supplier"]

    def test_reverse_traversal(self, schema):
        mtype = MoleculeType.parse("Component.contains.Part", schema)
        assert mtype.edges == [MoleculeEdge("Component", "contains",
                                            "Part", False)]
        assert mtype.edges[0].parent_ref_key == "contains.in"

    def test_branches(self, schema):
        mtype = MoleculeType.parse(
            "Component(.contains.Part)(.supplied_by.Supplier)", schema)
        assert mtype.root == "Component"
        assert len(mtype.edges) == 2
        assert {e.child for e in mtype.edges} == {"Part", "Supplier"}

    def test_branch_then_continue(self, schema):
        mtype = MoleculeType.parse(
            "Part.contains.Component(.supplied_by.Supplier)", schema)
        assert len(mtype.edges) == 2

    def test_whitespace_tolerated(self, schema):
        assert MoleculeType.parse("  Part  ", schema).root == "Part"

    def test_empty_rejected(self, schema):
        with pytest.raises(ParseError):
            MoleculeType.parse("", schema)

    def test_unbalanced_parens_rejected(self, schema):
        with pytest.raises(ParseError):
            MoleculeType.parse("Part(.contains.Component", schema)

    def test_missing_type_after_link_rejected(self, schema):
        with pytest.raises(ParseError):
            MoleculeType.parse("Part.contains", schema)

    def test_unknown_link_rejected(self, schema):
        with pytest.raises(UnknownTypeError):
            MoleculeType.parse("Part.holds.Component", schema)

    def test_wrong_link_endpoints_rejected(self, schema):
        with pytest.raises(InvalidMoleculeTypeError):
            MoleculeType.parse("Part.supplied_by.Supplier", schema)


class TestValidation:
    def test_unknown_root_rejected(self, schema):
        with pytest.raises(UnknownTypeError):
            MoleculeType("Mystery").validate(schema)

    def test_disconnected_edges_rejected(self, schema):
        mtype = MoleculeType("Part", [
            MoleculeEdge("Component", "supplied_by", "Supplier", True)])
        with pytest.raises(InvalidMoleculeTypeError):
            mtype.validate(schema)

    def test_self_edge_allowed_as_bounded_recursion(self):
        schema = Schema("s")
        schema.add_atom_type(AtomType("Part", [
            Attribute("name", DataType.STRING)]))
        schema.add_link_type(LinkType("part_of", "Part", "Part"))
        mtype = MoleculeType("Part", [
            MoleculeEdge("Part", "part_of", "Part", True, max_depth=3)])
        mtype.validate(schema)  # direct recursion with a bound is legal

    def test_indirect_cycle_rejected(self):
        schema = Schema("s")
        schema.add_atom_type(AtomType("A", []))
        schema.add_atom_type(AtomType("B", []))
        schema.add_link_type(LinkType("ab", "A", "B"))
        schema.add_link_type(LinkType("ba", "B", "A"))
        mtype = MoleculeType("A", [
            MoleculeEdge("A", "ab", "B", True),
            MoleculeEdge("B", "ba", "A", True)])
        with pytest.raises(InvalidMoleculeTypeError):
            mtype.validate(schema)

    def test_direction_mismatch_rejected(self, schema):
        mtype = MoleculeType("Part", [
            MoleculeEdge("Part", "contains", "Component", False)])
        with pytest.raises(InvalidMoleculeTypeError):
            mtype.validate(schema)

    def test_diamond_is_allowed(self):
        """A DAG that reconverges is a legal molecule type."""
        schema = Schema("s")
        for name in ("A", "B", "C", "D"):
            schema.add_atom_type(AtomType(name, []))
        schema.add_link_type(LinkType("ab", "A", "B"))
        schema.add_link_type(LinkType("ac", "A", "C"))
        schema.add_link_type(LinkType("bd", "B", "D"))
        schema.add_link_type(LinkType("cd", "C", "D"))
        mtype = MoleculeType("A", [
            MoleculeEdge("A", "ab", "B", True),
            MoleculeEdge("A", "ac", "C", True),
            MoleculeEdge("B", "bd", "D", True),
            MoleculeEdge("C", "cd", "D", True)])
        mtype.validate(schema)


class TestStructure:
    def test_atom_type_names_root_first(self, schema):
        mtype = MoleculeType.parse(
            "Part.contains.Component.supplied_by.Supplier", schema)
        assert mtype.atom_type_names() == ["Part", "Component", "Supplier"]

    def test_edges_from(self, schema):
        mtype = MoleculeType.parse(
            "Component(.contains.Part)(.supplied_by.Supplier)", schema)
        assert len(mtype.edges_from("Component")) == 2
        assert mtype.edges_from("Supplier") == []

    def test_str_single_chain(self, schema):
        text = "Part.contains.Component"
        assert str(MoleculeType.parse(text, schema)) == text

"""Tests for molecule *instances*: traversal order, occurrence counting,
serialization."""

import pytest

from repro.testing import ReferenceDatabase


@pytest.fixture
def shared_component(cad_schema):
    """Two parts sharing one component; molecule from a reverse root."""
    ref = ReferenceDatabase(cad_schema)
    p1 = ref.insert("Part", {"name": "a"}, valid_from=0)
    p2 = ref.insert("Part", {"name": "b"}, valid_from=0)
    shared = ref.insert("Component", {"cname": "shared"}, valid_from=0)
    ref.link("contains", p1, shared, valid_from=0)
    ref.link("contains", p2, shared, valid_from=0)
    return ref, p1, p2, shared


class TestTraversal:
    def test_atoms_preorder_root_first(self, shared_component):
        ref, p1, _, shared = shared_component
        molecule = ref.molecule_at(p1, "Part.contains.Component", 1)
        order = [atom.atom_id for atom in molecule.atoms()]
        assert order[0] == p1
        assert shared in order

    def test_children_sorted_by_atom_id(self, cad_schema):
        ref = ReferenceDatabase(cad_schema)
        part = ref.insert("Part", {"name": "p"}, valid_from=0)
        components = [ref.insert("Component", {"cname": f"c{i}"},
                                 valid_from=0) for i in range(5)]
        for component in reversed(components):
            ref.link("contains", part, component, valid_from=0)
        molecule = ref.molecule_at(part, "Part.contains.Component", 1)
        child_ids = [atom.atom_id for atom in molecule.atoms()][1:]
        assert child_ids == sorted(child_ids)

    def test_occurrences_counted_per_path(self, shared_component):
        """From the shared component upward, each part occurs once; from a
        diamond, a reconverging atom occurs once per path."""
        ref, p1, p2, shared = shared_component
        molecule = ref.molecule_at(shared, "Component.contains.Part", 1)
        assert molecule.atom_count() == 3  # component + both parts

    def test_distinct_atom_ids(self, shared_component):
        ref, p1, p2, shared = shared_component
        molecule = ref.molecule_at(shared, "Component.contains.Part", 1)
        assert sorted(molecule.distinct_atom_ids()) == sorted(
            [shared, p1, p2])

    def test_child_atoms_accessor(self, shared_component):
        ref, p1, _, shared = shared_component
        molecule = ref.molecule_at(p1, "Part.contains.Component", 1)
        (edge,) = molecule.type.edges
        children = molecule.root.child_atoms(edge)
        assert [child.atom_id for child in children] == [shared]


class TestSerialization:
    def test_to_dict_shape(self, shared_component):
        ref, p1, _, shared = shared_component
        molecule = ref.molecule_at(p1, "Part.contains.Component", 1)
        document = molecule.to_dict()
        assert document["molecule_type"] == "Part.contains.Component"
        root = document["root"]
        assert root["atom_id"] == p1
        assert root["values"]["name"] == "a"
        (children,) = root["children"].values()
        assert children[0]["atom_id"] == shared

    def test_to_dict_is_json_safe(self, shared_component):
        import json
        ref, p1, _, _ = shared_component
        molecule = ref.molecule_at(p1, "Part.contains.Component", 1)
        json.dumps(molecule.to_dict())  # must not raise


class TestComposition:
    def test_same_composition_reflexive(self, shared_component):
        ref, p1, _, _ = shared_component
        a = ref.molecule_at(p1, "Part.contains.Component", 1)
        b = ref.molecule_at(p1, "Part.contains.Component", 2)
        assert a.same_composition_as(b)
        assert b.same_composition_as(a)

    def test_value_change_breaks_composition(self, shared_component):
        ref, p1, _, shared = shared_component
        before = ref.molecule_at(p1, "Part.contains.Component", 1)
        ref.update(shared, {"weight": 9.0}, valid_from=5)
        after = ref.molecule_at(p1, "Part.contains.Component", 6)
        assert not before.same_composition_as(after)

    def test_membership_change_breaks_composition(self, shared_component):
        ref, p1, _, shared = shared_component
        before = ref.molecule_at(p1, "Part.contains.Component", 1)
        ref.unlink("contains", p1, shared, valid_from=5)
        after = ref.molecule_at(p1, "Part.contains.Component", 6)
        assert not before.same_composition_as(after)

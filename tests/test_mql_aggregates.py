"""Tests for MQL aggregates over molecule contents."""

import pytest

from repro.errors import AnalysisError, ParseError
from repro.mql.ast_nodes import Aggregate, AttrPath
from repro.mql.parser import parse_query


class TestParsing:
    def test_count_type(self):
        query = parse_query("SELECT COUNT(Component) FROM P")
        assert query.select.paths == (Aggregate("COUNT",
                                                type_name="Component"),)

    def test_value_aggregates(self):
        for func in ("SUM", "AVG", "MIN", "MAX", "COUNT"):
            query = parse_query(f"SELECT {func}(C.weight) FROM P")
            assert query.select.paths == (
                Aggregate(func, AttrPath("C", "weight")),)

    def test_mixed_select(self):
        query = parse_query(
            "SELECT P.name, COUNT(C), AVG(C.weight) FROM P")
        assert len(query.select.paths) == 3

    def test_bare_type_only_for_count(self):
        with pytest.raises(ParseError):
            parse_query("SELECT SUM(Component) FROM P")

    def test_aggregate_named_attribute_still_works(self):
        # "count" without parentheses is an ordinary identifier.
        query = parse_query("SELECT count.x FROM count")
        assert query.select.paths == (AttrPath("count", "x"),)


class TestAnalysis:
    def test_sum_requires_numeric(self, db):
        with pytest.raises(AnalysisError, match="numeric"):
            db.query("SELECT SUM(Part.name) FROM Part")

    def test_count_accepts_strings(self, db):
        db.query("SELECT COUNT(Part.name) FROM Part")

    def test_aggregate_type_must_be_in_molecule(self, db):
        with pytest.raises(AnalysisError):
            db.query("SELECT COUNT(Supplier) FROM Part")

    def test_min_max_on_strings_allowed(self, db):
        db.query("SELECT MIN(Part.name), MAX(Part.name) FROM Part")


@pytest.fixture
def bom(db):
    with db.transaction() as txn:
        p1 = txn.insert("Part", {"name": "wheel"}, valid_from=0)
        p2 = txn.insert("Part", {"name": "bare"}, valid_from=0)
        weights = (2.0, 4.0, 6.0)
        for index, weight in enumerate(weights):
            c = txn.insert("Component",
                           {"cname": f"c{index}", "weight": weight},
                           valid_from=0)
            txn.link("contains", p1, c, valid_from=0)
        nameless = txn.insert("Component", {"cname": "x", "weight": None},
                              valid_from=0)
        txn.link("contains", p1, nameless, valid_from=0)
    return db, p1, p2


class TestEvaluation:
    def test_count_type_per_molecule(self, bom):
        db, p1, p2 = bom
        result = db.query(
            "SELECT Part.name, COUNT(Component) "
            "FROM Part.contains.Component VALID AT 1")
        rows = {row["Part.name"]: row["COUNT(Component)"]
                for row in result.rows()}
        assert rows == {"wheel": 4, "bare": 0}

    def test_value_aggregates_skip_nulls(self, bom):
        db, p1, _ = bom
        result = db.query(
            "SELECT COUNT(Component.weight), SUM(Component.weight), "
            "AVG(Component.weight), MIN(Component.weight), "
            "MAX(Component.weight) "
            "FROM Part.contains.Component "
            "WHERE Part.name = 'wheel' VALID AT 1")
        (row,) = result.rows()
        assert row["COUNT(Component.weight)"] == 3  # NULL skipped
        assert row["SUM(Component.weight)"] == 12.0
        assert row["AVG(Component.weight)"] == 4.0
        assert row["MIN(Component.weight)"] == 2.0
        assert row["MAX(Component.weight)"] == 6.0

    def test_empty_aggregates(self, bom):
        db, _, p2 = bom
        result = db.query(
            "SELECT SUM(Component.weight), COUNT(Component.weight) "
            "FROM Part.contains.Component "
            "WHERE Part.name = 'bare' VALID AT 1")
        (row,) = result.rows()
        assert row["SUM(Component.weight)"] is None
        assert row["COUNT(Component.weight)"] == 0

    def test_aggregates_follow_time(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "p"}, valid_from=0)
            c1 = txn.insert("Component", {"cname": "a", "weight": 1.0},
                            valid_from=0)
            c2 = txn.insert("Component", {"cname": "b", "weight": 3.0},
                            valid_from=10)
            txn.link("contains", part, c1, valid_from=0)
            txn.link("contains", part, c2, valid_from=10)
        early = db.query("SELECT SUM(Component.weight) "
                         "FROM Part.contains.Component VALID AT 5")
        late = db.query("SELECT SUM(Component.weight) "
                        "FROM Part.contains.Component VALID AT 15")
        assert early.rows()[0]["SUM(Component.weight)"] == 1.0
        assert late.rows()[0]["SUM(Component.weight)"] == 4.0

    def test_aggregate_over_history_states(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "p"}, valid_from=0)
            c = txn.insert("Component", {"cname": "a", "weight": 1.0},
                           valid_from=0)
            txn.link("contains", part, c, valid_from=0)
        with db.transaction() as txn:
            txn.update(c, {"weight": 9.0}, valid_from=10)
        result = db.query(
            "SELECT MAX(Component.weight) "
            "FROM Part.contains.Component VALID DURING [0, 20)")
        assert [e.row["MAX(Component.weight)"] for e in result] == [
            1.0, 9.0]

"""Tests for MQL semantic analysis."""

import pytest

from repro.errors import AnalysisError
from repro.mql.analyzer import analyze
from repro.mql.parser import parse_query


def check(text, schema):
    return analyze(parse_query(text), schema)


class TestMoleculeResolution:
    def test_forward_edge(self, cad_schema):
        analyzed = check("SELECT ALL FROM Part.contains.Component",
                         cad_schema)
        (edge,) = analyzed.molecule_type.edges
        assert edge.forward

    def test_reverse_edge(self, cad_schema):
        analyzed = check("SELECT ALL FROM Component.contains.Part",
                         cad_schema)
        (edge,) = analyzed.molecule_type.edges
        assert not edge.forward

    def test_unknown_root(self, cad_schema):
        with pytest.raises(AnalysisError):
            check("SELECT ALL FROM Mystery", cad_schema)

    def test_unknown_link(self, cad_schema):
        with pytest.raises(AnalysisError):
            check("SELECT ALL FROM Part.holds.Component", cad_schema)

    def test_wrong_endpoints(self, cad_schema):
        with pytest.raises(AnalysisError):
            check("SELECT ALL FROM Part.supplied_by.Supplier", cad_schema)

    def test_disconnected_branch_impossible_by_grammar(self, cad_schema):
        analyzed = check(
            "SELECT ALL FROM Part.contains.Component.supplied_by.Supplier",
            cad_schema)
        assert analyzed.molecule_type.atom_type_names() == [
            "Part", "Component", "Supplier"]


class TestPathChecking:
    def test_select_path_must_be_in_molecule(self, cad_schema):
        with pytest.raises(AnalysisError, match="not part of"):
            check("SELECT Supplier.sname FROM Part", cad_schema)

    def test_select_unknown_attribute(self, cad_schema):
        with pytest.raises(AnalysisError, match="no attribute"):
            check("SELECT Part.colour FROM Part", cad_schema)

    def test_where_path_must_be_in_molecule(self, cad_schema):
        with pytest.raises(AnalysisError):
            check("SELECT ALL FROM Part WHERE Component.weight > 1",
                  cad_schema)

    def test_valid_paths_pass(self, cad_schema):
        check("SELECT Part.name, Component.weight "
              "FROM Part.contains.Component "
              "WHERE Part.cost > 5 AND Component.cname != 'x'", cad_schema)


class TestLiteralTypes:
    def test_string_against_float_rejected(self, cad_schema):
        with pytest.raises(AnalysisError):
            check("SELECT ALL FROM Part WHERE Part.cost = 'cheap'",
                  cad_schema)

    def test_int_against_float_allowed(self, cad_schema):
        check("SELECT ALL FROM Part WHERE Part.cost > 5", cad_schema)

    def test_bool_against_float_rejected(self, cad_schema):
        with pytest.raises(AnalysisError):
            check("SELECT ALL FROM Part WHERE Part.cost = TRUE", cad_schema)

    def test_bool_against_bool_allowed(self, cad_schema):
        check("SELECT ALL FROM Part WHERE Part.released = TRUE", cad_schema)

    def test_null_equality_allowed(self, cad_schema):
        check("SELECT ALL FROM Part WHERE Part.cost = NULL", cad_schema)
        check("SELECT ALL FROM Part WHERE Part.cost != NULL", cad_schema)

    def test_null_ordering_rejected(self, cad_schema):
        with pytest.raises(AnalysisError):
            check("SELECT ALL FROM Part WHERE Part.cost < NULL", cad_schema)

    def test_nested_predicates_checked(self, cad_schema):
        with pytest.raises(AnalysisError):
            check("SELECT ALL FROM Part WHERE Part.cost > 1 "
                  "OR NOT Part.name = 5", cad_schema)

"""The DIFF query form: lexing through evaluation, plus the oracle.

``DIFF <molecule> BETWEEN t1 AND t2 [WHERE ...]`` nets change events
between two transaction-time slices.  The differential oracle at the
bottom is the load-bearing test: for randomized mutation histories
across all three storage strategies, folding the SUBSCRIBE change
stream over ``(t1, t2]`` must reconstruct the DIFF result
byte-identically — and the stream itself must survive a mid-stream
reconnect (source torn down, cursor resumed from the persisted ack)
with no gaps and no duplicates.
"""

import json
import random

import pytest

from repro.cdc.events import fold_events
from repro.cdc.source import ChangeStreamSource
from repro.errors import AnalysisError, ParseError, ReproError
from repro.mql.ast_nodes import DiffClause, ParamRef, SelectAll, ValidAtNow
from repro.mql.lexer import tokenize
from repro.mql.parser import bind_parameters, has_parameters, parse_query
from repro.temporal import FOREVER

MT = "Part.contains.Component"
NOW = FOREVER - 1


# -- lexer ------------------------------------------------------------------


class TestLexing:
    def test_diff_and_between_are_keywords(self):
        kinds = [(t.type.name, t.value)
                 for t in tokenize("DIFF Part BETWEEN 1 AND 5")]
        assert ("KEYWORD", "DIFF") in kinds
        assert ("KEYWORD", "BETWEEN") in kinds

    def test_diff_stays_usable_as_an_identifier(self):
        # Soft keyword: an attribute named "diff" must still parse as
        # a name in contexts where the keyword reading is impossible.
        query = parse_query("SELECT ALL FROM Part WHERE Part.diff = 1")
        assert query.where.path.attribute == "diff"
        assert query.diff is None


# -- parser -----------------------------------------------------------------


class TestParsing:
    def test_basic_shape(self):
        query = parse_query("DIFF Part.contains.Component "
                            "BETWEEN 3 AND 9")
        assert query.diff == DiffClause(3, 9)
        assert isinstance(query.select, SelectAll)
        assert isinstance(query.valid, ValidAtNow)
        assert query.when is None and query.as_of is None
        assert query.molecule.root == "Part"

    def test_where_clause_parses(self):
        query = parse_query("DIFF Part BETWEEN 3 AND 9 "
                            "WHERE Part.cost > 1.5")
        assert query.diff == DiffClause(3, 9)
        assert query.where is not None

    def test_parameter_placeholders(self):
        query = parse_query("DIFF Part BETWEEN $a AND $b")
        assert query.diff == DiffClause(ParamRef("a"), ParamRef("b"))
        assert has_parameters(query)
        bound = bind_parameters(query, {"a": 1, "b": 2})
        assert bound.diff == DiffClause(1, 2)
        assert not has_parameters(bound)

    def test_non_integer_binding_rejected(self):
        query = parse_query("DIFF Part BETWEEN $a AND 9")
        with pytest.raises(ParseError, match="integer time"):
            bind_parameters(query, {"a": "soon"})
        with pytest.raises(ParseError, match="integer time"):
            bind_parameters(query, {"a": True})

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_query("DIFF Part BETWEEN 1 AND 5 VALID AT 3")

    def test_explain_analyze_prefix(self):
        query = parse_query("EXPLAIN ANALYZE DIFF Part BETWEEN 1 AND 5")
        assert query.explain and query.diff == DiffClause(1, 5)


# -- analysis ---------------------------------------------------------------


class TestAnalysis:
    def test_unknown_molecule_rejected(self, db):
        with pytest.raises(ReproError):
            db.query("DIFF Widget BETWEEN 1 AND 5")

    def test_unbound_parameter_rejected(self, db):
        with pytest.raises((AnalysisError, ParseError), match="unbound"):
            db.query("DIFF Part BETWEEN $a AND 5")

    @pytest.mark.parametrize("bounds", ["5 AND 5", "9 AND 2"])
    def test_bad_bounds_rejected(self, db, bounds):
        with pytest.raises(AnalysisError, match="start < end"):
            db.query(f"DIFF Part BETWEEN {bounds}")

    def test_bad_bounds_rejected_warm(self, db):
        """The value check must not be skipped by analysis reuse: the
        same parameterized text fails identically after a same-typed
        binding primed the plan cache."""
        text = "DIFF Part BETWEEN $a AND $b"
        db.query(text, params={"a": 0, "b": 5})
        with pytest.raises(AnalysisError, match="start < end"):
            db.query(text, params={"a": 5, "b": 0})


# -- evaluation -------------------------------------------------------------


def tick(db):
    """The transaction time of the most recent commit."""
    return db._clock.now() - 1


class TestEvaluation:
    def test_no_changes_yields_no_rows(self, db):
        with db.transaction() as txn:
            txn.insert("Part", {"name": "p"}, valid_from=0)
        t1 = tick(db)
        result = db.query(f"DIFF Part BETWEEN {t1} AND {t1 + 1}")
        assert result.entries == []
        assert "diff[tt" in result.plan

    def test_creation_brings_values_and_links(self, db):
        with db.transaction() as txn:
            txn.insert("Part", {"name": "pre"}, valid_from=0)
        t1 = tick(db)
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "wheel", "cost": 2.0},
                              valid_from=0)
            comp = txn.insert("Component", {"cname": "hub"}, valid_from=0)
            txn.link("contains", part, comp, valid_from=0)
        t2 = tick(db)
        result = db.query(f"DIFF {MT} BETWEEN {t1} AND {t2}")
        rows = {(e.root_id, e.row["kind"], e.row["atom_id"])
                for e in result.entries}
        assert (part, "atom_created", part) in rows
        assert (part, "atom_created", comp) in rows
        assert (part, "link_added", part) in rows
        created = next(e.row for e in result.entries
                       if e.row["kind"] == "atom_created"
                       and e.row["atom_id"] == part)
        assert created["before"] is None
        assert created["after"]["name"] == "wheel"

    def test_attribute_change_reports_full_states(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "p", "cost": 1.0},
                              valid_from=0)
        t1 = tick(db)
        with db.transaction() as txn:
            txn.update(part, {"cost": 2.0}, valid_from=0)
        with db.transaction() as txn:
            txn.update(part, {"cost": 3.0}, valid_from=0)
        t2 = tick(db)
        result = db.query(f"DIFF Part BETWEEN {t1} AND {t2}")
        [entry] = result.entries
        assert entry.row["kind"] == "attribute_changed"
        assert entry.row["before"] == {"name": "p", "cost": 1.0,
                                       "released": None}
        assert entry.row["after"]["cost"] == 3.0
        # The row's tt is the *last* effective change in the window.
        assert entry.row["tt"] == t2
        assert (entry.valid.start, entry.valid.end) == (t1, t2)

    def test_delete_and_netted_link_removal(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "p"}, valid_from=0)
            comp = txn.insert("Component", {"cname": "c"}, valid_from=0)
            txn.link("contains", part, comp, valid_from=0)
        t1 = tick(db)
        with db.transaction() as txn:
            txn.delete(part, valid_from=0)
        t2 = tick(db)
        result = db.query(f"DIFF {MT} BETWEEN {t1} AND {t2}")
        kinds = [e.row["kind"] for e in result.entries]
        # The link vanishes *because* the part does: deletion implies
        # it, so only the atom_deleted row is reported.
        assert kinds == ["atom_deleted"]
        assert result.entries[0].row["after"] is None

    def test_add_then_remove_nets_out(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "p"}, valid_from=0)
            comp = txn.insert("Component", {"cname": "c"}, valid_from=0)
        t1 = tick(db)
        with db.transaction() as txn:
            txn.link("contains", part, comp, valid_from=0)
        with db.transaction() as txn:
            txn.unlink("contains", part, comp, valid_from=0)
        t2 = tick(db)
        result = db.query(f"DIFF {MT} BETWEEN {t1} AND {t2}")
        assert result.entries == []

    def test_where_admits_either_endpoint(self, db):
        with db.transaction() as txn:
            cheap = txn.insert("Part", {"name": "cheap", "cost": 1.0},
                               valid_from=0)
            pricey = txn.insert("Part", {"name": "pricey", "cost": 9.0},
                                valid_from=0)
            stable = txn.insert("Part", {"name": "stable", "cost": 1.0},
                                valid_from=0)
        t1 = tick(db)
        with db.transaction() as txn:
            txn.update(cheap, {"cost": 9.5}, valid_from=0)   # now matches
        with db.transaction() as txn:
            txn.update(pricey, {"cost": 0.5}, valid_from=0)  # used to match
        with db.transaction() as txn:
            txn.update(stable, {"name": "still"}, valid_from=0)  # never
        t2 = tick(db)
        result = db.query(f"DIFF Part BETWEEN {t1} AND {t2} "
                          f"WHERE Part.cost > 5.0")
        roots = sorted(e.root_id for e in result.entries)
        assert roots == sorted([cheap, pricey])

    def test_params_bind_equal_to_literals(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "p", "cost": 1.0},
                              valid_from=0)
        t1 = tick(db)
        with db.transaction() as txn:
            txn.update(part, {"cost": 2.0}, valid_from=0)
        t2 = tick(db)
        literal = db.query(f"DIFF Part BETWEEN {t1} AND {t2}")
        bound = db.query("DIFF Part BETWEEN $a AND $b",
                         params={"a": t1, "b": t2})
        assert ([e.row for e in literal.entries]
                == [e.row for e in bound.entries])

    def test_finite_validity_outside_now_is_invisible(self, db):
        """DIFF reads the current valid instant; a change confined to a
        closed historical window is not a change *now*."""
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "p", "cost": 1.0},
                              valid_from=0)
        t1 = tick(db)
        with db.transaction() as txn:
            txn.correct(part, 0, 50, {"cost": 9.0})
        t2 = tick(db)
        result = db.query(f"DIFF Part BETWEEN {t1} AND {t2}")
        assert result.entries == []

    def test_explain_profiles_the_two_slice_plan(self, db):
        with db.transaction() as txn:
            txn.insert("Part", {"name": "p"}, valid_from=0)
        t1 = tick(db)
        with db.transaction() as txn:
            txn.insert("Part", {"name": "q"}, valid_from=0)
        t2 = tick(db)
        result = db.explain(f"DIFF Part BETWEEN {t1} AND {t2}")
        assert result.profile is not None
        assert result.profile.find("diff")
        assert len(result.profile.find("slice")) >= 2
        assert result.profile.find("compare")


# -- the differential oracle ------------------------------------------------


def random_history(db, rng):
    """Drive a random mutation program; returns commit-time checkpoints.

    Operations are biased toward open-ended validity so they touch the
    current instant DIFF reads, with closed-window corrections and
    carve-out deletes mixed in as temporal noise the fold must ignore.
    """
    parts, comps = [], []
    checkpoints = []
    for _ in range(rng.randrange(8, 16)):
        op = rng.random()
        try:
            with db.transaction() as txn:
                if op < 0.25 or not parts:
                    part = txn.insert(
                        "Part", {"name": f"p{rng.randrange(1000)}",
                                 "cost": float(rng.randrange(50))},
                        valid_from=0)
                    parts.append(part)
                    if comps and rng.random() < 0.5:
                        txn.link("contains", part, rng.choice(comps),
                                 valid_from=0)
                elif op < 0.40 or not comps:
                    comp = txn.insert(
                        "Component", {"cname": f"c{rng.randrange(1000)}"},
                        valid_from=0)
                    comps.append(comp)
                elif op < 0.60:
                    txn.update(rng.choice(parts),
                               {"cost": float(rng.randrange(50))},
                               valid_from=0)
                elif op < 0.70:
                    txn.link("contains", rng.choice(parts),
                             rng.choice(comps), valid_from=0)
                elif op < 0.80:
                    txn.unlink("contains", rng.choice(parts),
                               rng.choice(comps), valid_from=0)
                elif op < 0.90:
                    txn.correct(rng.choice(parts), 0,
                                rng.randrange(10, 60),
                                {"cost": float(rng.randrange(50))})
                else:
                    victim = rng.choice(parts)
                    txn.delete(victim, valid_from=0)
                    parts.remove(victim)
        except ReproError:
            pass  # double-link, unlink of nothing, …: fine, move on
        checkpoints.append(db._clock.now() - 1)
    return checkpoints


def consume_with_reconnect(db, subscriber):
    """Drain the change stream in small acked batches, killing and
    recreating the server-side source halfway through — the reconnect
    must resume from the persisted ack with no gaps, no duplicates."""
    source = ChangeStreamSource(db)
    events = []
    reconnected = False
    last = 0
    # Prime the cursor at the start of the log (persists ack 0).
    source.handle({"subscriber": subscriber, "from_lsn": 1,
                   "max_records": 1, "ack_lsn": 0})
    while True:
        body = source.handle({"subscriber": subscriber, "max_records": 3,
                              "ack_lsn": last})
        if not body["events"]:
            if body["caught_up"]:
                break
            continue
        for event in body["events"]:
            assert event["lsn"] > last, "duplicate or reordered delivery"
            last = event["lsn"]
            events.append(event)
        if not reconnected and len(events) >= 4:
            # Tear the source down mid-stream; the catalog-persisted
            # ack is all the new instance gets to resume from.
            reconnected = True
            del source
            source = ChangeStreamSource(db)
    return events


@pytest.mark.parametrize("seed", [2, 7, 23, 101])
def test_subscribe_fold_reconstructs_diff(db, seed):
    """For randomized histories (all 3 strategies via the ``db``
    fixture), folding the SUBSCRIBE stream over ``(t1, t2]`` equals
    ``DIFF m BETWEEN t1 AND t2`` byte-for-byte, per molecule root."""
    rng = random.Random(seed)
    checkpoints = random_history(db, rng)

    events = consume_with_reconnect(db, f"oracle-{seed}")
    reference = ChangeStreamSource(db).handle(
        {"subscriber": "oracle-ref", "from_lsn": 1, "max_records": 4096})
    assert [e["lsn"] for e in events] == \
        [e["lsn"] for e in reference["events"]], \
        "reconnected stream diverged from a single-shot replay"

    windows = {(checkpoints[0] - 1, checkpoints[-1])}
    for _ in range(4):
        t1, t2 = sorted(rng.sample(checkpoints, 2))
        if t1 < t2:
            windows.add((t1, t2))
    roots = db.atoms_of_type("Part")
    for t1, t2 in sorted(windows):
        result = db.query(f"DIFF {MT} BETWEEN {t1} AND {t2}")
        got = {}
        for entry in result.entries:
            got.setdefault(entry.root_id, []).append(entry.row)
        folded = fold_events(events, t1, t2)
        expected = {}
        for root in roots:
            scope = set()
            for tt in (t1, t2):
                molecule = db.molecule_at(root, MT, NOW, tt)
                if molecule is not None:
                    scope.update(a.atom_id for a in molecule.atoms())
            rows = [row for row in folded if row["atom_id"] in scope]
            if rows:
                expected[root] = rows
        assert json.dumps(got, sort_keys=True) == \
            json.dumps(expected, sort_keys=True), \
            f"DIFF and folded stream disagree over ({t1}, {t2}]"

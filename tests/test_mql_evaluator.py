"""Tests for MQL planning and evaluation against a live database."""

import pytest

from repro.errors import AnalysisError


@pytest.fixture
def loaded(db):
    """A small catalogue with history: two parts, three components."""
    with db.transaction() as txn:
        p1 = txn.insert("Part", {"name": "wheel", "cost": 10.0,
                                 "released": True}, valid_from=0)
        p2 = txn.insert("Part", {"name": "frame", "cost": 99.0,
                                 "released": False}, valid_from=0)
        c1 = txn.insert("Component", {"cname": "hub", "weight": 2.0},
                        valid_from=0)
        c2 = txn.insert("Component", {"cname": "rim", "weight": 1.0},
                        valid_from=0)
        c3 = txn.insert("Component", {"cname": "tube", "weight": 4.0},
                        valid_from=5)
        sup = txn.insert("Supplier", {"sname": "acme", "rating": 5},
                         valid_from=0)
        txn.link("contains", p1, c1, valid_from=0)
        txn.link("contains", p1, c2, valid_from=0)
        txn.link("contains", p2, c3, valid_from=5)
        txn.link("supplied_by", c1, sup, valid_from=0)
    with db.transaction() as txn:
        txn.update(p1, {"cost": 20.0}, valid_from=10)
    return {"db": db, "p1": p1, "p2": p2, "c1": c1, "c2": c2, "c3": c3,
            "sup": sup}


class TestTimeSlice:
    def test_select_all_molecules(self, loaded):
        result = loaded["db"].query("SELECT ALL FROM Part VALID AT 1")
        assert len(result) == 2
        assert not result.projected
        assert all(e.molecule is not None for e in result)

    def test_predicate_on_root(self, loaded):
        result = loaded["db"].query(
            "SELECT Part.name FROM Part WHERE Part.cost > 50 VALID AT 1")
        assert result.rows() == [{"Part.name": "frame"}]

    def test_predicate_sees_time_sliced_values(self, loaded):
        early = loaded["db"].query(
            "SELECT ALL FROM Part WHERE Part.cost = 10 VALID AT 5")
        late = loaded["db"].query(
            "SELECT ALL FROM Part WHERE Part.cost = 10 VALID AT 15")
        assert len(early) == 1
        assert len(late) == 0

    def test_child_membership_follows_time(self, loaded):
        db = loaded["db"]
        at4 = db.query("SELECT ALL FROM Part.contains.Component VALID AT 4")
        at6 = db.query("SELECT ALL FROM Part.contains.Component VALID AT 6")
        molecules4 = {e.root_id: e.molecule.atom_count() for e in at4}
        molecules6 = {e.root_id: e.molecule.atom_count() for e in at6}
        assert molecules4[loaded["p2"]] == 1  # tube not valid yet
        assert molecules6[loaded["p2"]] == 2

    def test_existential_semantics_on_children(self, loaded):
        result = loaded["db"].query(
            "SELECT Part.name FROM Part.contains.Component "
            "WHERE Component.weight >= 2 VALID AT 1")
        assert [row["Part.name"] for row in result.rows()] == ["wheel"]

    def test_not_negates_whole_comparison(self, loaded):
        # wheel has a component >= 2 (hub) so NOT excludes it; frame has
        # no component at t=1, the inner comparison is false, NOT admits.
        result = loaded["db"].query(
            "SELECT Part.name FROM Part.contains.Component "
            "WHERE NOT Component.weight >= 2 VALID AT 1")
        assert [row["Part.name"] for row in result.rows()] == ["frame"]

    def test_and_or(self, loaded):
        result = loaded["db"].query(
            "SELECT Part.name FROM Part "
            "WHERE Part.cost < 50 AND Part.released = TRUE VALID AT 1")
        assert [row["Part.name"] for row in result.rows()] == ["wheel"]
        result = loaded["db"].query(
            "SELECT Part.name FROM Part "
            "WHERE Part.cost > 50 OR Part.released = TRUE VALID AT 1")
        assert len(result) == 2

    def test_null_comparison(self, db):
        with db.transaction() as txn:
            txn.insert("Part", {"name": "bare"}, valid_from=0)
            txn.insert("Part", {"name": "priced", "cost": 5.0}, valid_from=0)
        result = db.query(
            "SELECT Part.name FROM Part WHERE Part.cost = NULL VALID AT 1")
        assert [row["Part.name"] for row in result.rows()] == ["bare"]
        result = db.query(
            "SELECT Part.name FROM Part WHERE Part.cost != NULL VALID AT 1")
        assert [row["Part.name"] for row in result.rows()] == ["priced"]

    def test_projection_collects_child_values(self, loaded):
        result = loaded["db"].query(
            "SELECT Part.name, Component.cname "
            "FROM Part.contains.Component "
            "WHERE Part.name = 'wheel' VALID AT 1")
        (row,) = result.rows()
        assert row["Part.name"] == "wheel"
        assert sorted(row["Component.cname"]) == ["hub", "rim"]

    def test_deep_molecule_query(self, loaded):
        result = loaded["db"].query(
            "SELECT Supplier.sname FROM "
            "Part.contains.Component.supplied_by.Supplier "
            "WHERE Part.name = 'wheel' VALID AT 1")
        (row,) = result.rows()
        assert row["Supplier.sname"] == ["acme"]

    def test_default_time_is_now(self, loaded):
        result = loaded["db"].query(
            "SELECT Part.cost FROM Part WHERE Part.name = 'wheel'")
        assert result.rows() == [{"Part.cost": 20.0}]  # post-update value


class TestIntervalQueries:
    def test_during_returns_states(self, loaded):
        result = loaded["db"].query(
            "SELECT Part.cost FROM Part WHERE Part.name = 'wheel' "
            "VALID DURING [0, 20)")
        assert [(str(e.valid), e.row["Part.cost"]) for e in result] == [
            ("[0, 10)", 10.0), ("[10, 20)", 20.0)]

    def test_during_filters_states_by_predicate(self, loaded):
        result = loaded["db"].query(
            "SELECT Part.cost FROM Part "
            "WHERE Part.name = 'wheel' AND Part.cost > 15 "
            "VALID DURING [0, 20)")
        assert [str(e.valid) for e in result] == ["[10, 20)"]

    def test_history(self, loaded):
        result = loaded["db"].query(
            "SELECT ALL FROM Part WHERE Part.name = 'frame' VALID HISTORY")
        (entry,) = result.entries
        assert entry.valid.start == 0

    def test_during_membership_change(self, loaded):
        result = loaded["db"].query(
            "SELECT ALL FROM Part.contains.Component "
            "WHERE Part.name = 'frame' VALID DURING [0, 10)")
        assert [e.molecule.atom_count() for e in result] == [1, 2]


class TestAsOf:
    def test_as_of_past_knowledge(self, loaded):
        db = loaded["db"]
        # The cost update was the last transaction; roll back before it.
        current = db.query(
            "SELECT Part.cost FROM Part WHERE Part.name = 'wheel' "
            "VALID AT 15")
        old = db.query(
            "SELECT Part.cost FROM Part WHERE Part.name = 'wheel' "
            "VALID AT 15 AS OF 0")
        assert current.rows() == [{"Part.cost": 20.0}]
        assert old.rows() == [{"Part.cost": 10.0}]

    def test_as_of_before_creation_is_empty(self, loaded):
        result = loaded["db"].query(
            "SELECT ALL FROM Part VALID AT 1 AS OF -5")
        assert len(result) == 0


class TestPlanner:
    def test_scan_without_index(self, loaded):
        result = loaded["db"].query(
            "SELECT ALL FROM Part WHERE Part.name = 'wheel' VALID AT 1")
        assert "scan(Part)" in result.plan

    def test_index_used_for_root_equality(self, loaded):
        db = loaded["db"]
        db.create_attribute_index("Part", "name")
        result = db.query(
            "SELECT ALL FROM Part WHERE Part.name = 'wheel' VALID AT 1")
        assert "index(Part.name" in result.plan
        assert len(result) == 1

    def test_index_candidates_rechecked_at_time(self, loaded):
        """The index covers all versions; stale values must not leak."""
        db = loaded["db"]
        db.create_attribute_index("Part", "cost")
        result = db.query(
            "SELECT ALL FROM Part WHERE Part.cost = 10 VALID AT 15")
        assert len(result) == 0  # cost was 10 only before t=10

    def test_index_ignored_for_non_root_predicate(self, loaded):
        db = loaded["db"]
        db.create_attribute_index("Component", "cname")
        result = db.query(
            "SELECT ALL FROM Part.contains.Component "
            "WHERE Component.cname = 'hub' VALID AT 1")
        assert "scan(Part)" in result.plan

    def test_index_ignored_inside_or(self, loaded):
        db = loaded["db"]
        db.create_attribute_index("Part", "name")
        result = db.query(
            "SELECT ALL FROM Part "
            "WHERE Part.name = 'wheel' OR Part.cost > 50 VALID AT 1")
        assert "scan(Part)" in result.plan
        assert len(result) == 2


class TestResultApi:
    def test_to_table_molecules(self, loaded):
        result = loaded["db"].query("SELECT ALL FROM Part VALID AT 1")
        text = result.to_table()
        assert "molecule of" in text

    def test_to_table_rows(self, loaded):
        result = loaded["db"].query(
            "SELECT Part.name FROM Part VALID AT 1")
        assert "Part.name=" in result.to_table()

    def test_empty_result(self, loaded):
        result = loaded["db"].query(
            "SELECT ALL FROM Part WHERE Part.cost > 10000 VALID AT 1")
        assert result.to_table() == "(empty result)"
        assert result.molecules() == []

    def test_analysis_errors_surface(self, loaded):
        with pytest.raises(AnalysisError):
            loaded["db"].query("SELECT ALL FROM Nothing")

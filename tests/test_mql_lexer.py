"""Tests for the MQL lexer."""

import pytest

from repro.errors import LexerError
from repro.mql.lexer import TokenType, tokenize


def kinds(text):
    return [(t.type, t.value) for t in tokenize(text)[:-1]]


class TestTokens:
    def test_keywords_case_insensitive(self):
        assert kinds("select FROM Where") == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.KEYWORD, "FROM"),
            (TokenType.KEYWORD, "WHERE")]

    def test_identifiers_preserve_case(self):
        assert kinds("Part cost_2") == [
            (TokenType.IDENT, "Part"), (TokenType.IDENT, "cost_2")]

    def test_integers(self):
        assert kinds("42 -7 0") == [
            (TokenType.INT, "42"), (TokenType.INT, "-7"),
            (TokenType.INT, "0")]

    def test_floats(self):
        assert kinds("3.25 -0.5") == [
            (TokenType.FLOAT, "3.25"), (TokenType.FLOAT, "-0.5")]

    def test_dot_after_int_is_path_separator(self):
        # "Part.contains" style paths must not eat dots into numbers.
        tokens = kinds("a.b")
        assert tokens == [(TokenType.IDENT, "a"), (TokenType.SYMBOL, "."),
                          (TokenType.IDENT, "b")]

    def test_strings_single_and_double(self):
        assert kinds("'abc' \"def\"") == [
            (TokenType.STRING, "abc"), (TokenType.STRING, "def")]

    def test_string_escapes(self):
        assert kinds(r"'it\'s'") == [(TokenType.STRING, "it's")]

    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize("'oops")

    def test_symbols_maximal_munch(self):
        assert kinds("<= < != =") == [
            (TokenType.SYMBOL, "<="), (TokenType.SYMBOL, "<"),
            (TokenType.SYMBOL, "!="), (TokenType.SYMBOL, "=")]

    def test_brackets(self):
        assert kinds("[ ) ( ] ,") == [
            (TokenType.SYMBOL, "["), (TokenType.SYMBOL, ")"),
            (TokenType.SYMBOL, "("), (TokenType.SYMBOL, "]"),
            (TokenType.SYMBOL, ",")]

    def test_unexpected_character(self):
        with pytest.raises(LexerError) as info:
            tokenize("SELECT @")
        assert info.value.position == 7

    def test_end_token(self):
        tokens = tokenize("x")
        assert tokens[-1].type is TokenType.END

    def test_empty_input(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].type is TokenType.END

    def test_time_keywords(self):
        assert kinds("NOW FOREVER TMIN") == [
            (TokenType.KEYWORD, "NOW"), (TokenType.KEYWORD, "FOREVER"),
            (TokenType.KEYWORD, "TMIN")]

    def test_positions_recorded(self):
        tokens = tokenize("SELECT ALL")
        assert tokens[0].position == 0
        assert tokens[1].position == 7

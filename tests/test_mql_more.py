"""Further MQL coverage: clause combinations and planner correctness
under lossy index keys."""

import pytest


class TestLossyStringIndex:
    def test_shared_prefix_candidates_are_rechecked(self, db):
        """Strings sharing a 16-byte index prefix must not leak into each
        other's equality results."""
        long_a = "component-" + "x" * 20 + "-alpha"
        long_b = "component-" + "x" * 20 + "-beta"
        with db.transaction() as txn:
            a = txn.insert("Part", {"name": long_a}, valid_from=0)
            b = txn.insert("Part", {"name": long_b}, valid_from=0)
        db.create_attribute_index("Part", "name")
        result = db.query(
            f"SELECT ALL FROM Part WHERE Part.name = '{long_a}' VALID AT 1")
        assert "index(" in result.plan
        assert result.root_ids() == [a]

    def test_exact_short_strings_unaffected(self, db):
        with db.transaction() as txn:
            txn.insert("Part", {"name": "bolt"}, valid_from=0)
            txn.insert("Part", {"name": "bolt2"}, valid_from=0)
        db.create_attribute_index("Part", "name")
        result = db.query(
            "SELECT ALL FROM Part WHERE Part.name = 'bolt' VALID AT 1")
        assert len(result) == 1


class TestClauseCombinations:
    @pytest.fixture
    def loaded(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "x", "cost": 1.0},
                              valid_from=0)
        tt_initial = db._clock.now() - 1
        with db.transaction() as txn:
            txn.update(part, {"cost": 2.0}, valid_from=10)
        return db, part, tt_initial

    def test_during_with_as_of(self, loaded):
        db, part, tt_initial = loaded
        now_view = db.query(
            "SELECT Part.cost FROM Part VALID DURING [0, 20)")
        old_view = db.query(
            f"SELECT Part.cost FROM Part VALID DURING [0, 20) "
            f"AS OF {tt_initial}")
        assert [e.row["Part.cost"] for e in now_view] == [1.0, 2.0]
        assert [e.row["Part.cost"] for e in old_view] == [1.0]
        assert str(old_view[0].valid) == "[0, 20)"

    def test_history_with_as_of(self, loaded):
        db, part, tt_initial = loaded
        old_view = db.query(
            f"SELECT ALL FROM Part VALID HISTORY AS OF {tt_initial}")
        (entry,) = old_view.entries
        assert entry.valid.start == 0

    def test_query_inside_transaction_sees_own_writes(self, db):
        with db.transaction() as txn:
            txn.insert("Part", {"name": "fresh"}, valid_from=0)
            result = txn.query("SELECT ALL FROM Part VALID AT 1")
            assert len(result) == 1

    def test_empty_database_queries(self, db):
        assert len(db.query("SELECT ALL FROM Part VALID AT 0")) == 0
        assert len(db.query("SELECT ALL FROM Part VALID HISTORY")) == 0

    def test_select_same_path_twice(self, db):
        with db.transaction() as txn:
            txn.insert("Part", {"name": "x", "cost": 3.0}, valid_from=0)
        result = db.query(
            "SELECT Part.cost, Part.cost FROM Part VALID AT 1")
        assert result.rows() == [{"Part.cost": 3.0}]

    def test_branch_molecule_query(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "p"}, valid_from=0)
            hub = txn.insert("Component", {"cname": "h"}, valid_from=0)
            sup = txn.insert("Supplier", {"sname": "s", "rating": 4},
                             valid_from=0)
            txn.link("contains", part, hub, valid_from=0)
            txn.link("supplied_by", hub, sup, valid_from=0)
        result = db.query(
            "SELECT Component.cname, Supplier.sname "
            "FROM Component(.contains.Part)(.supplied_by.Supplier) "
            "WHERE Supplier.rating >= 4 VALID AT 1")
        (row,) = result.rows()
        assert row["Component.cname"] == "h"
        assert row["Supplier.sname"] == ["s"]

    def test_result_entry_metadata(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "p"}, valid_from=5)
        result = db.query("SELECT ALL FROM Part VALID AT 7")
        (entry,) = result.entries
        assert entry.root_id == part
        assert entry.valid.contains(7)
        assert repr(result).startswith("QueryResult(")

"""Tests for MQL query parameters (``$name`` placeholders)."""

import pytest

from repro.errors import AnalysisError, LexerError, ParseError


@pytest.fixture
def loaded(db):
    with db.transaction() as txn:
        wheel = txn.insert("Part", {"name": "wheel", "cost": 10.0},
                           valid_from=0)
        frame = txn.insert("Part", {"name": "fra'me", "cost": 99.0},
                           valid_from=0)
    return db, wheel, frame


class TestBinding:
    def test_string_parameter(self, loaded):
        db, wheel, _ = loaded
        result = db.query(
            "SELECT ALL FROM Part WHERE Part.name = $n VALID AT 1",
            params={"n": "wheel"})
        assert result.root_ids() == [wheel]

    def test_parameter_handles_quotes_safely(self, loaded):
        """A value that would break string interpolation binds cleanly."""
        db, _, frame = loaded
        result = db.query(
            "SELECT ALL FROM Part WHERE Part.name = $n VALID AT 1",
            params={"n": "fra'me"})
        assert result.root_ids() == [frame]

    def test_numeric_parameter(self, loaded):
        db, wheel, _ = loaded
        result = db.query(
            "SELECT ALL FROM Part WHERE Part.cost < $limit VALID AT 1",
            params={"limit": 50})
        assert result.root_ids() == [wheel]

    def test_none_parameter(self, loaded):
        db, _, _ = loaded
        result = db.query(
            "SELECT ALL FROM Part WHERE Part.released = $r VALID AT 1",
            params={"r": None})
        assert len(result) == 2  # released is NULL on both

    def test_same_parameter_twice(self, loaded):
        db, wheel, _ = loaded
        result = db.query(
            "SELECT ALL FROM Part "
            "WHERE Part.cost >= $x AND Part.cost <= $x VALID AT 1",
            params={"x": 10.0})
        assert result.root_ids() == [wheel]

    def test_parameter_used_with_index(self, loaded):
        db, wheel, _ = loaded
        db.create_attribute_index("Part", "name")
        result = db.query(
            "SELECT ALL FROM Part WHERE Part.name = $n VALID AT 1",
            params={"n": "wheel"})
        assert "index(Part.name" in result.plan
        assert result.root_ids() == [wheel]


class TestErrors:
    def test_unbound_parameter_rejected(self, loaded):
        db, _, _ = loaded
        with pytest.raises((ParseError, AnalysisError)):
            db.query("SELECT ALL FROM Part WHERE Part.name = $n "
                     "VALID AT 1")

    def test_missing_binding_rejected(self, loaded):
        db, _, _ = loaded
        with pytest.raises(ParseError, match=r"\$other"):
            db.query("SELECT ALL FROM Part WHERE Part.name = $other "
                     "VALID AT 1", params={"n": "x"})

    def test_unused_binding_rejected(self, loaded):
        db, _, _ = loaded
        with pytest.raises(ParseError, match="unused"):
            db.query("SELECT ALL FROM Part VALID AT 1",
                     params={"ghost": 1})

    def test_unsupported_type_rejected(self, loaded):
        db, _, _ = loaded
        with pytest.raises(ParseError, match="unsupported type"):
            db.query("SELECT ALL FROM Part WHERE Part.name = $n "
                     "VALID AT 1", params={"n": [1, 2]})

    def test_type_checking_applies_to_bound_value(self, loaded):
        db, _, _ = loaded
        with pytest.raises(AnalysisError):
            db.query("SELECT ALL FROM Part WHERE Part.cost = $n "
                     "VALID AT 1", params={"n": "not a number"})

    def test_bare_dollar_rejected(self, loaded):
        db, _, _ = loaded
        with pytest.raises(LexerError):
            db.query("SELECT ALL FROM Part WHERE Part.cost = $ VALID AT 1")

"""Tests for the MQL parser."""

import pytest

from repro.errors import ParseError
from repro.mql.ast_nodes import (
    And,
    AttrPath,
    Comparison,
    CompareOp,
    Literal,
    Not,
    Or,
    SelectAll,
    SelectPaths,
    ValidAt,
    ValidAtNow,
    ValidDuring,
    ValidHistory,
)
from repro.mql.parser import parse_query
from repro.temporal import FOREVER, TMIN


class TestSelect:
    def test_select_all(self):
        query = parse_query("SELECT ALL FROM Part")
        assert isinstance(query.select, SelectAll)

    def test_select_paths(self):
        query = parse_query("SELECT Part.name, Part.cost FROM Part")
        assert query.select == SelectPaths((AttrPath("Part", "name"),
                                            AttrPath("Part", "cost")))

    def test_missing_select_rejected(self):
        with pytest.raises(ParseError):
            parse_query("FROM Part")


class TestFrom:
    def test_single_type(self):
        query = parse_query("SELECT ALL FROM Part")
        assert query.molecule.root == "Part"
        assert query.molecule.edges == ()

    def test_path(self):
        query = parse_query("SELECT ALL FROM Part.contains.Component")
        (edge,) = query.molecule.edges
        assert (edge.parent, edge.link, edge.child) == (
            "Part", "contains", "Component")

    def test_chain(self):
        query = parse_query(
            "SELECT ALL FROM A.l1.B.l2.C")
        assert [e.child for e in query.molecule.edges] == ["B", "C"]

    def test_branches(self):
        query = parse_query("SELECT ALL FROM A(.l1.B)(.l2.C)")
        assert [(e.parent, e.child) for e in query.molecule.edges] == [
            ("A", "B"), ("A", "C")]

    def test_nested_branches(self):
        query = parse_query("SELECT ALL FROM A(.l1.B(.l3.D))(.l2.C)")
        assert [(e.parent, e.child) for e in query.molecule.edges] == [
            ("A", "B"), ("B", "D"), ("A", "C")]

    def test_dangling_dot_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT ALL FROM Part.contains")


class TestWhere:
    def test_comparison_ops(self):
        for symbol, op in (("=", CompareOp.EQ), ("!=", CompareOp.NE),
                           ("<", CompareOp.LT), ("<=", CompareOp.LE),
                           (">", CompareOp.GT), (">=", CompareOp.GE)):
            query = parse_query(f"SELECT ALL FROM P WHERE P.x {symbol} 5")
            assert query.where == Comparison(AttrPath("P", "x"), op,
                                             Literal(5))

    def test_literals(self):
        cases = [("5", 5), ("2.5", 2.5), ("'s'", "s"), ("TRUE", True),
                 ("FALSE", False), ("NULL", None), ("-3", -3)]
        for text, expected in cases:
            query = parse_query(f"SELECT ALL FROM P WHERE P.x = {text}")
            assert query.where.literal == Literal(expected)

    def test_and_or_precedence(self):
        query = parse_query(
            "SELECT ALL FROM P WHERE P.a = 1 OR P.b = 2 AND P.c = 3")
        assert isinstance(query.where, Or)
        assert isinstance(query.where.operands[1], And)

    def test_not(self):
        query = parse_query("SELECT ALL FROM P WHERE NOT P.a = 1")
        assert isinstance(query.where, Not)

    def test_parentheses_override(self):
        query = parse_query(
            "SELECT ALL FROM P WHERE (P.a = 1 OR P.b = 2) AND P.c = 3")
        assert isinstance(query.where, And)
        assert isinstance(query.where.operands[0], Or)

    def test_missing_operator_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT ALL FROM P WHERE P.a 5")

    def test_missing_literal_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT ALL FROM P WHERE P.a = FROM")


class TestTemporalClauses:
    def test_default_is_now(self):
        assert parse_query("SELECT ALL FROM P").valid == ValidAtNow()

    def test_valid_at(self):
        assert parse_query("SELECT ALL FROM P VALID AT 42").valid == \
            ValidAt(42)

    def test_valid_at_now(self):
        assert parse_query("SELECT ALL FROM P VALID AT NOW").valid == \
            ValidAtNow()

    def test_valid_during(self):
        assert parse_query(
            "SELECT ALL FROM P VALID DURING [10, 20)").valid == \
            ValidDuring(10, 20)

    def test_valid_during_closed_bracket_spelling(self):
        assert parse_query(
            "SELECT ALL FROM P VALID DURING [10, 20]").valid == \
            ValidDuring(10, 20)

    def test_valid_during_sentinels(self):
        assert parse_query(
            "SELECT ALL FROM P VALID DURING [TMIN, FOREVER)").valid == \
            ValidDuring(TMIN, FOREVER)

    def test_valid_history(self):
        assert parse_query("SELECT ALL FROM P VALID HISTORY").valid == \
            ValidHistory()

    def test_as_of(self):
        query = parse_query("SELECT ALL FROM P VALID AT 5 AS OF 17")
        assert query.as_of == 17

    def test_as_of_without_valid(self):
        query = parse_query("SELECT ALL FROM P AS OF 17")
        assert query.as_of == 17 and query.valid == ValidAtNow()

    def test_bad_valid_clause_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT ALL FROM P VALID SOMETIME")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT ALL FROM P VALID AT 5 garbage")

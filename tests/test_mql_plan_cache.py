"""MQL plan cache: reuse, parameter rebinding, eviction, DDL invalidation.

Query texts are parsed (and, when parameter-free, analyzed) once and
reused; parameterized texts cache the parse only, so late-bound values
still get full literal type checking.  DDL changes index availability,
so it clears the cache outright.
"""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.mql.planner import PlanCache
from repro.obs import MetricsRegistry


@pytest.fixture
def stocked(db):
    with db.transaction() as txn:
        for name, cost in (("wheel", 10.0), ("frame", 120.0),
                           ("seat", 35.0)):
            txn.insert("Part", {"name": name, "cost": cost}, valid_from=0)
    return db


def _cache_stats(db):
    return {
        "hits": db.metrics.value("mql.plan_cache.hits"),
        "misses": db.metrics.value("mql.plan_cache.misses"),
        "evictions": db.metrics.value("mql.plan_cache.evictions"),
    }


class TestReuse:
    def test_repeated_query_hits_the_cache(self, stocked):
        db = stocked
        text = "SELECT ALL FROM Part WHERE Part.cost > 50 VALID AT 5"
        first = db.query(text)
        before = _cache_stats(db)
        second = db.query(text)
        after = _cache_stats(db)
        assert after["hits"] > before["hits"]
        assert len(first.entries) == len(second.entries) == 1

    def test_whitespace_variants_share_an_entry(self, stocked):
        db = stocked
        db.query("SELECT ALL FROM Part VALID AT 5")
        before = _cache_stats(db)
        db.query("SELECT  ALL\n FROM   Part  VALID AT 5")
        after = _cache_stats(db)
        assert after["hits"] > before["hits"]
        assert after["misses"] == before["misses"]

    def test_results_stay_correct_across_reuse(self, stocked):
        db = stocked
        text = "SELECT Part.name FROM Part WHERE Part.cost < 50 VALID AT 5"
        first = db.query(text)
        second = db.query(text)
        names = lambda result: sorted(
            entry.row["Part.name"] for entry in result.entries)
        assert names(first) == names(second) == ["seat", "wheel"]


class TestParameters:
    TEXT = "SELECT ALL FROM Part WHERE Part.cost > $limit VALID AT 5"

    def test_same_text_different_params_different_results(self, stocked):
        db = stocked
        cheap = db.query(self.TEXT, params={"limit": 5.0})
        pricey = db.query(self.TEXT, params={"limit": 100.0})
        assert len(cheap.entries) == 3
        assert len(pricey.entries) == 1
        # The parse was shared: the second run hit the cache.
        before = _cache_stats(db)
        db.query(self.TEXT, params={"limit": 100.0})
        assert _cache_stats(db)["hits"] > before["hits"]

    def test_cached_parse_still_type_checks_bindings(self, stocked):
        db = stocked
        db.query(self.TEXT, params={"limit": 5.0})  # prime the cache
        with pytest.raises(ParseError):
            db.query(self.TEXT, params={"limit": object()})

    def test_unbound_parameter_still_rejected(self, stocked):
        with pytest.raises(ParseError):
            stocked.query(self.TEXT)


class TestParamTypeAnalysisReuse:
    TEXT = "SELECT ALL FROM Part WHERE Part.cost > $limit VALID AT 5"

    def _param_stats(self, db):
        return {
            "hits": db.metrics.value(
                "mql.plan_cache.param_analysis_hits"),
            "misses": db.metrics.value(
                "mql.plan_cache.param_analysis_misses"),
        }

    def test_same_typed_rebinding_skips_reanalysis(self, stocked):
        db = stocked
        db.query(self.TEXT, params={"limit": 5.0})
        before = self._param_stats(db)
        assert before["misses"] >= 1
        db.query(self.TEXT, params={"limit": 100.0})
        after = self._param_stats(db)
        assert after["hits"] > before["hits"]
        assert after["misses"] == before["misses"]

    def test_new_type_signature_reanalyzes_once(self, stocked):
        db = stocked
        db.query(self.TEXT, params={"limit": 5.0})    # float: miss
        db.query(self.TEXT, params={"limit": 5})      # int: new miss
        mid = self._param_stats(db)
        db.query(self.TEXT, params={"limit": 7})      # int again: hit
        after = self._param_stats(db)
        assert mid["misses"] >= 2
        assert after["hits"] > mid["hits"]
        assert after["misses"] == mid["misses"]

    def test_results_identical_across_reused_analysis(self, stocked):
        db = stocked
        text = ("SELECT Part.name FROM Part WHERE Part.cost > $limit "
                "VALID AT 5")
        baseline = db.query(text, params={"limit": 100.0})
        reused = db.query(text, params={"limit": 100.0})
        rows = lambda r: sorted(e.row["Part.name"] for e in r.entries)
        assert rows(baseline) == rows(reused) == ["frame"]
        # Different value, same type: analysis reused, result differs.
        cheap = db.query(text, params={"limit": 5.0})
        assert len(cheap.entries) == 3

    def test_bad_type_still_rejected_after_priming(self, stocked):
        db = stocked
        db.query(self.TEXT, params={"limit": 5.0})  # prime float path
        with pytest.raises(ParseError):
            db.query(self.TEXT, params={"limit": object()})

    def test_signature_cap_bounds_entry_growth(self, stocked):
        from repro.mql.planner import MAX_PARAM_SIGNATURES, param_signature
        db = stocked
        db.query(self.TEXT, params={"limit": 5.0})
        entry = db._plan_cache.get(self.TEXT)
        assert len(entry.analyzed_by_types) == 1
        assert param_signature({"limit": 5.0}) in entry.analyzed_by_types
        assert len(entry.analyzed_by_types) <= MAX_PARAM_SIGNATURES


class TestDiffCaching:
    """DIFF texts ride the same cache — but BETWEEN bounds are *value*
    checks, so the analysis-reuse fast path must re-validate them."""

    @pytest.fixture
    def mutated(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "axle", "cost": 3.0},
                              valid_from=0)
        self.t1 = db._clock.now() - 1
        with db.transaction() as txn:
            txn.update(part, {"cost": 9.0}, valid_from=0)
        self.t2 = db._clock.now() - 1
        return db

    def test_param_free_diff_hits_the_cache(self, mutated):
        db = mutated
        text = f"DIFF Part BETWEEN {self.t1} AND {self.t2}"
        first = db.query(text)
        before = _cache_stats(db)
        second = db.query(text)
        after = _cache_stats(db)
        assert after["hits"] > before["hits"]
        assert after["misses"] == before["misses"]
        assert [e.row["kind"] for e in first.entries] == \
            [e.row["kind"] for e in second.entries] == ["attribute_changed"]

    def test_parameterized_diff_reuses_analysis(self, mutated):
        db = mutated
        text = "DIFF Part BETWEEN $a AND $b"
        db.query(text, params={"a": self.t1, "b": self.t2})
        before = db.metrics.value("mql.plan_cache.param_analysis_hits")
        result = db.query(text, params={"a": self.t1 - 1, "b": self.t2})
        after = db.metrics.value("mql.plan_cache.param_analysis_hits")
        assert after > before
        assert {e.row["kind"] for e in result.entries} == {"atom_created"}

    def test_reversed_bounds_rejected_cold(self, mutated):
        from repro.errors import AnalysisError
        with pytest.raises(AnalysisError, match="start < end"):
            mutated.query("DIFF Part BETWEEN $a AND $b",
                          params={"a": 9, "b": 3})

    def test_reversed_bounds_rejected_on_warm_analysis_reuse(self, mutated):
        # Regression: the param-signature fast path skipped analysis,
        # and with it the bound check — a reversed window surfaced as an
        # internal interval error instead, but only when the cache was
        # warm.  The value check must run on every compile.
        from repro.errors import AnalysisError
        db = mutated
        text = "DIFF Part BETWEEN $a AND $b"
        db.query(text, params={"a": self.t1, "b": self.t2})  # warm it
        before = db.metrics.value("mql.plan_cache.param_analysis_hits")
        with pytest.raises(AnalysisError, match="start < end"):
            db.query(text, params={"a": self.t2, "b": self.t1})
        with pytest.raises(AnalysisError, match="start < end"):
            db.query(text, params={"a": self.t1, "b": self.t1})
        assert db.metrics.value(
            "mql.plan_cache.param_analysis_hits") > before


class TestEviction:
    def test_capacity_bounds_the_cache(self):
        cache = PlanCache(capacity=2, metrics=MetricsRegistry())
        cache.put("q1", "plan1")
        cache.put("q2", "plan2")
        cache.put("q3", "plan3")
        assert len(cache) == 2
        assert cache.get("q1") is None      # oldest evicted
        assert cache.get("q3") == "plan3"

    def test_get_refreshes_recency(self):
        cache = PlanCache(capacity=2, metrics=MetricsRegistry())
        cache.put("q1", "plan1")
        cache.put("q2", "plan2")
        cache.get("q1")                     # q1 is now most recent
        cache.put("q3", "plan3")
        assert cache.get("q1") == "plan1"
        assert cache.get("q2") is None

    def test_eviction_counter_moves_in_a_database(self, stocked):
        db = stocked
        db._plan_cache = PlanCache(capacity=2, metrics=db.metrics)
        for limit in range(4):
            db.query(f"SELECT ALL FROM Part WHERE Part.cost > {limit} "
                     f"VALID AT 5")
        assert _cache_stats(db)["evictions"] >= 2


class TestDDLInvalidation:
    def test_create_attribute_index_clears_cache(self, stocked):
        db = stocked
        db.query("SELECT ALL FROM Part WHERE Part.name = 'wheel' "
                 "VALID AT 5")
        assert len(db._plan_cache) > 0
        db.create_attribute_index("Part", "name")
        assert len(db._plan_cache) == 0
        # And the re-planned query picks up the new index without error.
        result = db.query("SELECT ALL FROM Part WHERE Part.name = 'wheel' "
                          "VALID AT 5")
        assert len(result.entries) == 1

    def test_create_vt_index_clears_cache(self, stocked):
        db = stocked
        db.query("SELECT ALL FROM Part VALID AT 5")
        assert len(db._plan_cache) > 0
        db.create_vt_index("Part")
        assert len(db._plan_cache) == 0


class TestNormalization:
    def test_whitespace_runs_collapse_outside_literals(self):
        assert (PlanCache.normalize("SELECT  ALL\n FROM\tPart  VALID AT 5")
                == PlanCache.normalize("SELECT ALL FROM Part VALID AT 5"))

    def test_literal_whitespace_is_significant(self):
        # Regression: collapsing inside quotes aliased two different
        # queries to one cache key, returning each other's plans.
        one = PlanCache.normalize(
            "SELECT ALL FROM Part WHERE Part.name = 'a  b' VALID AT 5")
        two = PlanCache.normalize(
            "SELECT ALL FROM Part WHERE Part.name = 'a b' VALID AT 5")
        assert one != two
        assert "'a  b'" in one

    def test_escaped_quote_does_not_end_the_literal(self):
        text = "SELECT ALL FROM Part WHERE Part.name = 'a\\'  b'   VALID AT 5"
        normalized = PlanCache.normalize(text)
        assert "'a\\'  b'" in normalized
        assert normalized.endswith("VALID AT 5")

    def test_distinct_literals_get_distinct_plans(self, stocked):
        db = stocked
        with db.transaction() as txn:
            txn.insert("Part", {"name": "a  b", "cost": 1.0}, valid_from=0)
            txn.insert("Part", {"name": "a b", "cost": 2.0}, valid_from=0)
        spaced = db.query("SELECT Part.cost FROM Part "
                          "WHERE Part.name = 'a  b' VALID AT 5")
        single = db.query("SELECT Part.cost FROM Part "
                          "WHERE Part.name = 'a b' VALID AT 5")
        assert [r["Part.cost"] for r in spaced.rows()] == [1.0]
        assert [r["Part.cost"] for r in single.rows()] == [2.0]

"""Tests for the WHEN clause (Allen-relation filters on result validity)."""

import pytest

from repro.errors import ParseError
from repro.mql.ast_nodes import WhenClause
from repro.mql.parser import parse_query


class TestParsing:
    def test_when_after_valid(self):
        query = parse_query(
            "SELECT ALL FROM P VALID DURING [0, 100) WHEN OVERLAPS [10, 20)")
        assert query.when == WhenClause("OVERLAPS", 10, 20)

    def test_all_relations_parse(self):
        for relation in ("OVERLAPS", "DURING", "CONTAINS", "MEETS",
                         "BEFORE", "AFTER", "EQUALS", "STARTS", "FINISHES"):
            query = parse_query(
                f"SELECT ALL FROM P WHEN {relation} [1, 2)")
            assert query.when.relation == relation

    def test_when_before_as_of(self):
        query = parse_query(
            "SELECT ALL FROM P VALID HISTORY WHEN DURING [0, 9) AS OF 5")
        assert query.when is not None and query.as_of == 5

    def test_bad_relation_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT ALL FROM P WHEN SIDEWAYS [1, 2)")

    def test_missing_interval_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT ALL FROM P WHEN OVERLAPS 5")


@pytest.fixture
def timeline_db(db):
    """One part whose cost changes at 10 and 20, queried over [0, 30)."""
    with db.transaction() as txn:
        part = txn.insert("Part", {"name": "x", "cost": 1.0}, valid_from=0)
    with db.transaction() as txn:
        txn.update(part, {"cost": 2.0}, valid_from=10)
    with db.transaction() as txn:
        txn.update(part, {"cost": 3.0}, valid_from=20)
    return db


BASE = "SELECT Part.cost FROM Part VALID DURING [0, 30) "


def costs(result):
    return [entry.row["Part.cost"] for entry in result]


class TestEvaluation:
    def test_overlaps_selects_intersecting_states(self, timeline_db):
        result = timeline_db.query(BASE + "WHEN OVERLAPS [5, 15)")
        assert costs(result) == [1.0, 2.0]

    def test_during_selects_contained_states(self, timeline_db):
        result = timeline_db.query(BASE + "WHEN DURING [10, 30)")
        assert costs(result) == [2.0, 3.0]

    def test_contains_selects_covering_states(self, timeline_db):
        result = timeline_db.query(BASE + "WHEN CONTAINS [12, 18)")
        assert costs(result) == [2.0]

    def test_meets(self, timeline_db):
        result = timeline_db.query(BASE + "WHEN MEETS [10, 12)")
        assert costs(result) == [1.0]

    def test_before_and_after(self, timeline_db):
        assert costs(timeline_db.query(BASE + "WHEN BEFORE [25, 28)")) == [
            1.0, 2.0]
        assert costs(timeline_db.query(BASE + "WHEN AFTER [0, 5)")) == [
            2.0, 3.0]

    def test_equals(self, timeline_db):
        result = timeline_db.query(BASE + "WHEN EQUALS [10, 20)")
        assert costs(result) == [2.0]

    def test_starts_and_finishes(self, timeline_db):
        # state [10, 20) starts [10, 40); state [0, 10) finishes [-5, 10)
        assert costs(timeline_db.query(BASE + "WHEN STARTS [10, 40)")) == [
            2.0]
        assert costs(timeline_db.query(
            BASE + "WHEN FINISHES [-5, 10)")) == [1.0]

    def test_when_composes_with_where(self, timeline_db):
        result = timeline_db.query(
            "SELECT Part.cost FROM Part WHERE Part.cost > 1 "
            "VALID DURING [0, 30) WHEN OVERLAPS [5, 15)")
        assert costs(result) == [2.0]

    def test_when_on_time_slice(self, timeline_db):
        # A VALID AT entry's validity is the single instant.
        result = timeline_db.query(
            "SELECT Part.cost FROM Part VALID AT 12 WHEN DURING [10, 20)")
        assert costs(result) == [2.0]
        result = timeline_db.query(
            "SELECT Part.cost FROM Part VALID AT 12 WHEN DURING [0, 5)")
        assert costs(result) == []

    def test_empty_when_result(self, timeline_db):
        result = timeline_db.query(BASE + "WHEN EQUALS [11, 19)")
        assert costs(result) == []

"""Tests for the observability layer: registry, spans, query profiles."""

import json
import math

import pytest

from repro import (
    AtomType,
    Attribute,
    Cardinality,
    DataType,
    DatabaseConfig,
    LinkType,
    Schema,
    TemporalDatabase,
)
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    QueryProfile,
    Tracer,
)
from repro.obs.trace import NULL_SPAN


# -- registry ---------------------------------------------------------------


class TestRegistry:
    def test_counter_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("disk.reads")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.value("disk.reads") == 5
        assert registry.value("disk.never_touched") == 0

    def test_counters_memoized(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")
        assert (registry.counter("a.b", x="1")
                is registry.counter("a.b", x="1"))
        assert registry.counter("a.b") is not registry.counter("a.b", x="1")

    def test_labels_partition_a_name(self):
        registry = MetricsRegistry()
        registry.counter("btree.node_reads", index="i1").inc(2)
        registry.counter("btree.node_reads", index="i2").inc(3)
        assert registry.value("btree.node_reads", index="i1") == 2
        assert registry.total("btree.node_reads") == 5

    def test_totals_use_display_keys(self):
        registry = MetricsRegistry()
        registry.counter("a.x").inc()
        registry.counter("a.y", k="v").inc(2)
        assert registry.totals() == {"a.x": 1, "a.y{k=v}": 2}
        assert registry.totals_by_name() == {"a.x": 1, "a.y": 2}

    def test_layer_breakdown_groups_by_prefix(self):
        registry = MetricsRegistry()
        registry.counter("disk.reads").inc(3)
        registry.counter("buffer.hits").inc(7)
        registry.counter("buffer.misses", pool="p").inc(1)
        breakdown = registry.layer_breakdown()
        assert breakdown["disk"] == {"reads": 3}
        assert breakdown["buffer"] == {"hits": 7, "misses": 1}

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("pool.resident")
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 3
        gauge.set(11)
        assert gauge.value == 11

    def test_histogram_buckets_and_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h.sizes", bounds=(2, 4))
        for value in (1, 2, 3, 9):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == 15
        assert histogram.minimum == 1
        assert histogram.maximum == 9
        assert histogram.mean == pytest.approx(3.75)
        assert histogram.bucket_counts == [2, 1, 1]  # <=2, <=4, +inf

    def test_reset_with_and_without_prefix(self):
        registry = MetricsRegistry()
        registry.counter("disk.reads").inc(3)
        registry.counter("buffer.hits").inc(7)
        registry.reset("disk.")
        assert registry.value("disk.reads") == 0
        assert registry.value("buffer.hits") == 7
        registry.reset()
        assert registry.value("buffer.hits") == 0

    def test_snapshot_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("disk.reads").inc(3)
        registry.counter("btree.node_reads", index="i1").inc(2)
        registry.gauge("pool.resident").set(4)
        registry.histogram("h.sizes", bounds=(2, 4)).observe(3)
        snapshot = registry.snapshot()
        decoded = json.loads(json.dumps(snapshot))
        assert decoded == snapshot
        counters = {(c["name"], tuple(sorted(c["labels"].items()))): c["value"]
                    for c in decoded["counters"]}
        assert counters[("disk.reads", ())] == 3
        assert counters[("btree.node_reads", (("index", "i1"),))] == 2
        assert decoded["gauges"][0]["value"] == 4
        (histogram,) = decoded["histograms"]
        assert histogram["count"] == 1
        assert histogram["buckets"][-1]["le"] == "inf"


# -- tracer -----------------------------------------------------------------


class TestTracer:
    def test_span_is_noop_without_capture(self):
        tracer = Tracer(MetricsRegistry())
        assert tracer.span("anything") is NULL_SPAN
        with tracer.span("anything") as span:
            span.set("k", "v")  # must silently do nothing
            assert span.metric("x") == 0

    def test_null_tracer_never_captures(self):
        assert NULL_TRACER.span("x") is NULL_SPAN
        assert not NULL_TRACER.capturing

    def test_nesting_and_metric_deltas(self):
        registry = MetricsRegistry()
        counter = registry.counter("work.units")
        tracer = Tracer(registry)
        with tracer.capture() as capture:
            with tracer.span("outer") as outer:
                counter.inc(1)
                with tracer.span("inner") as inner:
                    counter.inc(4)
                    inner.set("detail", True)
        assert capture.root is outer
        assert outer.children == [inner]
        assert inner.metrics == {"work.units": 4}
        # Inclusive accounting: the parent sees its children's work too.
        assert outer.metric("work.units") == 5
        assert inner.attrs["detail"] is True
        assert outer.duration >= inner.duration >= 0.0

    def test_metric_aggregates_label_variants(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry)
        with tracer.capture() as capture:
            with tracer.span("s"):
                registry.counter("btree.node_reads", index="a").inc(2)
                registry.counter("btree.node_reads", index="b").inc(3)
        assert capture.root.metric("btree.node_reads") == 5

    def test_capture_is_reentrant(self):
        tracer = Tracer(MetricsRegistry())
        with tracer.capture() as outer_capture:
            with tracer.span("outer"):
                with tracer.capture() as inner_capture:
                    with tracer.span("inner"):
                        pass
                # back on the outer capture after the inner one closed
                with tracer.span("outer2"):
                    pass
        assert [s.name for s in inner_capture.spans] == ["inner"]
        assert [s.name for s in outer_capture.spans] == ["outer"]
        assert [c.name for c in outer_capture.spans[0].children] == ["outer2"]

    def test_span_walk_and_to_dict(self):
        tracer = Tracer(MetricsRegistry())
        with tracer.capture() as capture:
            with tracer.span("a", kind="root"):
                with tracer.span("b"):
                    pass
        names = [span.name for span in capture.root.walk()]
        assert names == ["a", "b"]
        as_dict = capture.root.to_dict()
        assert as_dict["name"] == "a"
        assert as_dict["attrs"] == {"kind": "root"}
        assert as_dict["children"][0]["name"] == "b"
        json.dumps(as_dict)  # JSON-safe


# -- end-to-end: EXPLAIN ANALYZE through a real database --------------------


def _schema() -> Schema:
    schema = Schema("cad")
    schema.add_atom_type(AtomType("Part", [
        Attribute("name", DataType.STRING, required=True),
        Attribute("cost", DataType.FLOAT),
    ]))
    schema.add_atom_type(AtomType("Component", [
        Attribute("weight", DataType.FLOAT),
    ]))
    schema.add_link_type(LinkType("contains", "Part", "Component",
                                  Cardinality.MANY_TO_MANY))
    return schema


@pytest.fixture
def obs_db(tmp_path):
    db = TemporalDatabase.create(str(tmp_path / "db"), _schema(),
                                 DatabaseConfig(buffer_pages=32))
    with db.transaction() as txn:
        for i in range(4):
            part = txn.insert("Part", {"name": f"p{i}", "cost": float(i)}, 0)
            comp = txn.insert("Component", {"weight": i * 1.0}, 0)
            txn.link("contains", part, comp, 0)
    yield db
    if not db._closed:
        db.close()


class TestExplainAnalyze:
    def test_plain_query_has_no_profile(self, obs_db):
        result = obs_db.query("SELECT ALL FROM Part VALID AT 5")
        assert result.profile is None

    def test_explain_analyze_attaches_profile(self, obs_db):
        result = obs_db.query(
            "EXPLAIN ANALYZE SELECT ALL FROM Part.contains.Component "
            "VALID AT 5")
        assert len(result) == 4  # profiling must not change the answer
        profile = result.profile
        assert isinstance(profile, QueryProfile)
        root = profile.root
        assert root.name == "mql.execute"
        assert [c.name for c in root.children] == ["access", "slice",
                                                   "project"]
        (access,) = profile.find("access")
        assert access.attrs["roots"] == 4
        (sl,) = profile.find("slice")
        assert sl.metric("builder.molecules") == 4
        assert root.metric("buffer.hits") + root.metric("buffer.misses") > 0

    def test_db_explain_equals_prefix(self, obs_db):
        result = obs_db.explain("SELECT ALL FROM Part VALID AT 5")
        assert result.profile is not None
        assert result.profile.plan == result.plan

    def test_window_query_profiles_window_operator(self, obs_db):
        result = obs_db.explain(
            "SELECT Part.name FROM Part WHERE Part.cost >= 1 "
            "VALID DURING [0, 10) WHEN OVERLAPS [0, 10)")
        names = [c.name for c in result.profile.root.children]
        assert names == ["access", "window", "filter.when", "project"]

    def test_profile_render_and_json(self, obs_db):
        result = obs_db.explain("SELECT ALL FROM Part VALID AT 5")
        text = result.profile.render()
        assert text.startswith("plan: ")
        assert "mql.execute" in text and "ms" in text
        decoded = json.loads(result.profile.to_json())
        assert decoded["plan"] == result.plan
        assert decoded["spans"][0]["name"] == "mql.execute"

    def test_profiling_leaves_no_capture_behind(self, obs_db):
        obs_db.explain("SELECT ALL FROM Part VALID AT 5")
        assert not obs_db.tracer.capturing
        assert obs_db.query("SELECT ALL FROM Part VALID AT 5").profile is None

    def test_explain_analyze_requires_analyze(self, obs_db):
        from repro.errors import ParseError
        with pytest.raises(ParseError):
            obs_db.query("EXPLAIN SELECT ALL FROM Part VALID AT 5")


# -- the kernel's own counters ----------------------------------------------


class TestKernelCounters:
    def test_io_stats_compat_shim(self, obs_db):
        stats = obs_db.io_stats()
        assert set(stats) == {"disk_reads", "disk_writes", "buffer_hits",
                              "buffer_misses", "buffer_evictions",
                              "wal_bytes", "file_bytes"}
        assert stats["buffer_hits"] == obs_db.metrics.value("buffer.hits")
        obs_db.reset_io_stats()
        after = obs_db.io_stats()
        assert after["disk_reads"] == 0
        assert after["buffer_hits"] == 0

    def test_wal_counters(self, obs_db):
        appends = obs_db.metrics.value("wal.appends")
        wal_bytes = obs_db.metrics.value("wal.bytes")
        fsyncs = obs_db.metrics.value("wal.fsyncs")
        assert appends > 0  # the seeding transaction logged records
        assert wal_bytes > 0
        with obs_db.transaction() as txn:
            txn.insert("Part", {"name": "extra"}, 0)
        assert obs_db.metrics.value("wal.appends") >= appends + 3
        assert obs_db.metrics.value("wal.bytes") > wal_bytes
        # Commits fsync under the default durability="sync" (via group
        # commit), and a forced flush is counted too.
        assert obs_db.metrics.value("wal.fsyncs") >= fsyncs + 1
        before_flush = obs_db.metrics.value("wal.fsyncs")
        obs_db._wal.flush(sync=True)
        assert obs_db.metrics.value("wal.fsyncs") == before_flush + 1

    def test_txn_counters(self, obs_db):
        begins = obs_db.metrics.value("txn.begins")
        with obs_db.transaction() as txn:
            txn.insert("Part", {"name": "one-more"}, 0)
        assert obs_db.metrics.value("txn.begins") == begins + 1
        assert obs_db.metrics.value("txn.commits") >= 1
        assert obs_db.metrics.value("txn.operations") >= 1

    def test_recovery_counters(self, tmp_path):
        path = str(tmp_path / "db")
        db = TemporalDatabase.create(path, _schema())
        with db.transaction() as txn:
            txn.insert("Part", {"name": "a"}, 0)
        # Simulate a crash: skip close() so the WAL tail must be replayed.
        db.buffer.flush_all()
        db._wal.flush()
        db._wal.close()
        db._disk.close()
        reopened = TemporalDatabase.open(path)
        assert reopened.last_recovery is not None
        assert (reopened.metrics.value("recovery.records_replayed")
                == reopened.last_recovery["operations"] > 0)
        assert reopened.metrics.value("recovery.transactions") >= 1
        reopened.close()

    def test_metrics_snapshot_round_trips(self, obs_db):
        obs_db.query("SELECT ALL FROM Part.contains.Component VALID AT 5")
        snapshot = obs_db.metrics_snapshot()
        decoded = json.loads(json.dumps(snapshot))
        assert decoded == snapshot
        names = {entry["name"] for entry in decoded["counters"]}
        assert {"disk.writes", "buffer.hits", "wal.appends",
                "engine.versions_scanned", "builder.molecules"} <= names

    def test_engine_and_builder_counters_move(self, obs_db):
        before = obs_db.metrics.value("builder.molecules")
        obs_db.query("SELECT ALL FROM Part VALID AT 5")
        assert obs_db.metrics.value("builder.molecules") == before + 4
        assert obs_db.metrics.total("engine.versions_scanned") > 0


# -- the CLI ----------------------------------------------------------------


class TestProfileCli:
    @pytest.fixture
    def cli_db(self, tmp_path):
        path = str(tmp_path / "db")
        db = TemporalDatabase.create(path, _schema())
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "p"}, 0)
            comp = txn.insert("Component", {"weight": 1.0}, 0)
            txn.link("contains", part, comp, 0)
        db.close()
        return path

    def test_profile_command_renders_tree(self, cli_db, capsys):
        from repro.__main__ import main
        code = main(["profile", cli_db,
                     "SELECT ALL FROM Part.contains.Component VALID AT 5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "plan:" in out
        assert "mql.execute" in out
        assert "access" in out and "slice" in out and "project" in out

    def test_profile_command_json(self, cli_db, capsys):
        from repro.__main__ import main
        code = main(["profile", cli_db,
                     "SELECT ALL FROM Part VALID AT 5", "--json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["entries"] == 1
        assert document["profile"]["spans"][0]["name"] == "mql.execute"
        names = {c["name"] for c in document["metrics"]["counters"]}
        assert "buffer.hits" in names

    def test_query_command_prints_profile_on_prefix(self, cli_db, capsys):
        from repro.__main__ import main
        code = main(["query", cli_db,
                     "EXPLAIN ANALYZE SELECT ALL FROM Part VALID AT 5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "-- plan:" in out
        assert "mql.execute" in out


# -- histogram quantiles ----------------------------------------------------


class TestHistogramQuantiles:
    BOUNDS = (0.001, 0.01, 0.1, 1.0)

    def test_empty_histogram_has_no_quantiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("empty.h", self.BOUNDS)
        assert histogram.quantile(0.5) is None
        assert histogram.percentiles() == {"p50": None, "p95": None,
                                           "p99": None}

    def test_single_observation_pins_every_quantile(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("one.h", self.BOUNDS)
        histogram.observe(0.005)
        for q in (0.5, 0.95, 0.99):
            assert histogram.quantile(q) == pytest.approx(0.005)

    def test_interpolation_inside_a_bucket(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("interp.h", (0.0, 10.0))
        # 100 observations uniform-ish in the (0, 10] bucket; the
        # estimator interpolates linearly within the bucket.
        for index in range(100):
            histogram.observe(index / 10.0)
        p50 = histogram.quantile(0.5)
        assert 4.0 <= p50 <= 6.0
        p99 = histogram.quantile(0.99)
        assert 9.0 <= p99 <= 10.0

    def test_estimates_clamped_to_observed_range(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("clamp.h", (1.0, 100.0))
        histogram.observe(2.0)
        histogram.observe(3.0)
        # Bucket upper bound is 100 but nothing above 3 was seen.
        assert histogram.quantile(0.99) <= 3.0
        assert histogram.quantile(0.01) >= 2.0

    def test_quantiles_are_monotone(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("mono.h", self.BOUNDS)
        for value in (0.0005, 0.002, 0.02, 0.05, 0.2, 0.5, 2.0):
            histogram.observe(value)
        quantiles = [histogram.quantile(q)
                     for q in (0.1, 0.5, 0.9, 0.99)]
        assert quantiles == sorted(quantiles)

    def test_snapshot_includes_percentiles(self):
        registry = MetricsRegistry()
        registry.histogram("snap.h", self.BOUNDS).observe(0.005)
        (entry,) = registry.snapshot()["histograms"]
        assert entry["percentiles"]["p50"] == pytest.approx(0.005)

    def test_all_overflow_clamps_to_finite_values(self):
        # Every sample lands past the last finite edge: the estimate
        # must stay finite (and within observed range), never inf/nan.
        registry = MetricsRegistry()
        histogram = registry.histogram("over.h", (1.0, 2.0, 4.0))
        histogram.observe(10.0)
        histogram.observe(20.0)
        assert histogram.quantile(0.5) == pytest.approx(10.0)
        for q in (0.01, 0.5, 0.95, 0.99):
            value = histogram.quantile(q)
            assert math.isfinite(value)
            assert 10.0 <= value <= 20.0

    def test_explicit_infinite_bound_never_interpolates(self):
        # An explicit inf bucket used to interpolate toward infinity,
        # yielding inf (or nan at fraction zero) for every quantile
        # that landed in it.
        registry = MetricsRegistry()
        histogram = registry.histogram("inf.h",
                                       (0.001, 0.01, float("inf")))
        histogram.observe(5.0)
        histogram.observe(6.0)
        assert histogram.quantile(0.5) == pytest.approx(5.0)
        for q in (0.25, 0.5, 0.75, 0.99):
            value = histogram.quantile(q)
            assert math.isfinite(value)
            assert 5.0 <= value <= 6.0

    def test_single_overflow_sample_reports_itself(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("oneover.h", (1.0, 2.0, 4.0))
        histogram.observe(3000.0)
        for q in (0.5, 0.95, 0.99):
            assert histogram.quantile(q) == pytest.approx(3000.0)
        assert histogram.percentiles()["p99"] == pytest.approx(3000.0)


# -- event log --------------------------------------------------------------


class TestEventLog:
    def test_emit_assigns_monotone_seq_and_fields(self):
        from repro.obs import EventLog
        log = EventLog(clock=lambda: 42.0)
        first = log.emit("session.open", session=1)
        second = log.emit("slow_query", session=1, seconds=0.5)
        assert first["seq"] == 1 and second["seq"] == 2
        assert first["ts"] == 42.0
        assert second["seconds"] == 0.5
        assert log.last_seq == 2

    def test_ring_drops_oldest(self):
        from repro.obs import EventLog
        log = EventLog(capacity=3)
        for index in range(5):
            log.emit("tick", n=index)
        entries = log.tail()
        assert [e["n"] for e in entries] == [2, 3, 4]
        assert log.last_seq == 5  # seq keeps counting past evictions

    def test_tail_filters_exact_and_prefix(self):
        from repro.obs import EventLog
        log = EventLog()
        log.emit("session.open", session=1)
        log.emit("session.close", session=1)
        log.emit("slow_query", session=1)
        assert [e["event"] for e in log.tail(event="session.")] == [
            "session.open", "session.close"]
        assert [e["event"] for e in log.tail(event="slow_query")] == [
            "slow_query"]
        assert log.tail(count=1)[0]["event"] == "slow_query"

    def test_sink_receives_json_lines(self):
        import io
        from repro.obs import EventLog
        sink = io.StringIO()
        log = EventLog(sink=sink)
        log.emit("server.start", port=7042)
        line = sink.getvalue().strip()
        parsed = json.loads(line)
        assert parsed["event"] == "server.start"
        assert parsed["port"] == 7042

    def test_dead_sink_never_breaks_emit(self):
        import io
        from repro.obs import EventLog, MetricsRegistry
        metrics = MetricsRegistry()
        sink = io.StringIO()
        log = EventLog(sink=sink, metrics=metrics)
        sink.close()
        entry = log.emit("tick")  # must not raise
        assert entry["seq"] == 1
        # The disablement is loud, not silent: a synthesized ring entry
        # records why the file stopped growing, and a counter ticks.
        entries = log.tail()
        assert [e["event"] for e in entries] == ["tick", "sink_disabled"]
        assert entries[-1]["seq"] == 2
        assert "ValueError" in entries[-1]["error"]
        assert metrics.value("events.sink_disabled") == 1
        # Subsequent emits proceed sink-less without further noise.
        log.emit("tock")
        assert metrics.value("events.sink_disabled") == 1
        assert len(log) == 3

    def test_emit_is_thread_safe(self):
        import threading
        from repro.obs import EventLog
        log = EventLog(capacity=10_000)
        def worker():
            for _ in range(500):
                log.emit("tick")
        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        entries = log.tail()
        assert log.last_seq == 2000
        # No duplicated or lost sequence numbers among retained events.
        seqs = [e["seq"] for e in entries]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)


# -- prometheus exposition --------------------------------------------------


class TestPrometheusExposition:
    def test_counters_gauges_and_summaries_render(self):
        from repro.obs import render_prometheus
        registry = MetricsRegistry()
        registry.counter("server.requests").inc(7)
        registry.gauge("server.requests.inflight").set(2)
        registry.histogram("server.request_seconds",
                           (0.001, 0.01)).observe(0.002)
        text = render_prometheus(registry)
        assert "# TYPE server_requests_total counter" in text
        assert "server_requests_total 7" in text
        assert "# TYPE server_requests_inflight gauge" in text
        assert "server_requests_inflight 2" in text
        assert "# TYPE server_request_seconds summary" in text
        assert 'server_request_seconds{quantile="0.5"}' in text
        assert "server_request_seconds_count 1" in text
        assert "server_request_seconds_sum" in text
        assert text.endswith("\n")

    def test_labels_render_sorted_and_escaped(self):
        from repro.obs import render_prometheus
        registry = MetricsRegistry()
        registry.counter("btree.node_reads", index="i\"1\"").inc()
        text = render_prometheus(registry)
        assert 'btree_node_reads_total{index="i\\"1\\""} 1' in text

    def test_extra_gauges_appended(self):
        from repro.obs import render_prometheus
        registry = MetricsRegistry()
        text = render_prometheus(registry, extra_gauges={
            "server_uptime_seconds": 12.5})
        assert "# TYPE server_uptime_seconds gauge" in text
        assert "server_uptime_seconds 12.5" in text

    def test_empty_summary_renders_nan(self):
        from repro.obs import render_prometheus
        registry = MetricsRegistry()
        registry.histogram("idle.h", (0.1,))
        text = render_prometheus(registry)
        assert 'idle_h{quantile="0.5"} NaN' in text
        assert "idle_h_count 0" in text


# -- distributed trace context ----------------------------------------------


class TestTraceContext:
    def test_capture_without_context_leaves_spans_unstamped(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry)
        with tracer.capture() as capture:
            with tracer.span("a"):
                pass
        span_dict = capture.spans[0].to_dict()
        assert "trace_id" not in span_dict
        assert "trace_id" not in capture.to_dict()

    def test_capture_with_context_stamps_ids_and_parents(self):
        from repro.obs import new_span_id, new_trace_id
        registry = MetricsRegistry()
        tracer = Tracer(registry)
        trace_id, client_span = new_trace_id(), new_span_id()
        with tracer.capture(trace_id=trace_id,
                            parent_span_id=client_span) as capture:
            with tracer.span("root"):
                with tracer.span("child"):
                    pass
        root = capture.spans[0]
        child = root.children[0]
        assert root.trace_id == child.trace_id == trace_id
        assert root.parent_span_id == client_span
        assert child.parent_span_id == root.span_id
        assert root.span_id != child.span_id
        assert capture.to_dict()["trace_id"] == trace_id

    def test_trace_ids_are_fresh_and_well_formed(self):
        from repro.obs import new_span_id, new_trace_id
        trace_ids = {new_trace_id() for _ in range(64)}
        assert len(trace_ids) == 64
        assert all(len(t) == 16 for t in trace_ids)
        assert all(len(new_span_id()) == 8 for _ in range(8))

    def test_concurrent_captures_do_not_bleed_trace_ids(self):
        """Captures are thread-local: two threads capturing at once
        under different trace ids must each see only their own."""
        import threading
        from repro.obs import new_trace_id
        registry = MetricsRegistry()
        tracer = Tracer(registry)
        failures = []
        barrier = threading.Barrier(8)

        def worker():
            trace_id = new_trace_id()
            barrier.wait()
            for _ in range(50):
                with tracer.capture(trace_id=trace_id) as capture:
                    with tracer.span("outer"):
                        with tracer.span("inner"):
                            pass
                for top in capture.spans:
                    for span in top.walk():
                        if span.trace_id != trace_id:
                            failures.append((span.trace_id, trace_id))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures


class TestRenderProfileDict:
    """The dict renderer used for profiles that arrive over the wire."""

    def _stitched_profile(self):
        return {
            "plan": "molecule Part via scan(Part)",
            "trace_id": "ab" * 8,
            "spans": [{
                "name": "client.request",
                "attrs": {"opcode": "EXPLAIN"},
                "duration_ms": 1.25,
                "metrics": {},
                "children": [{
                    "name": "server.request",
                    "attrs": {},
                    "duration_ms": 1.0,
                    "metrics": {"buffer.hits": 3, "buffer.misses": 1,
                                "engine.versions_scanned": 4},
                    "children": [],
                }],
                "trace_id": "ab" * 8,
                "span_id": "cd" * 4,
                "parent_span_id": None,
            }],
        }

    def test_renders_tree_with_trace_header(self):
        from repro.obs import render_profile_dict
        text = render_profile_dict(self._stitched_profile())
        lines = text.splitlines()
        assert lines[0] == f"plan: molecule Part via scan(Part)  trace={'ab' * 8}"
        assert lines[1].startswith("client.request [opcode=EXPLAIN]")
        assert "└─ server.request" in lines[2]
        assert "pages=4 (3 hit/1 miss)" in lines[2]
        assert "versions=4" in lines[2]

    def test_matches_query_profile_render_for_local_trees(self, obs_db):
        """Same table whether rendered from Spans or from their dict export."""
        from repro.obs import render_profile_dict
        result = obs_db.explain("SELECT ALL FROM Part VALID AT 5")
        profile = result.profile
        assert profile is not None
        assert render_profile_dict(profile.to_dict()) == profile.render()

    def test_tolerates_minimal_dict(self):
        from repro.obs import render_profile_dict
        assert render_profile_dict({}) == "plan: ?"

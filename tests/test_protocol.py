"""Wire protocol: framing round-trips and hostile-input fuzzing.

The framing layer is the server's outermost trust boundary: every test
here feeds it malformed bytes — truncations at every offset, corrupted
CRCs, oversized and undersized length prefixes, garbage — and requires
a clean :class:`ProtocolError` / :class:`ConnectionClosedError`, never
an unhandled exception or a silent wrong decode.
"""

from __future__ import annotations

import random
import struct

import pytest

from repro.errors import ConnectionClosedError, ProtocolError
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    Frame,
    Opcode,
    encode_frame,
    encode_payload,
    error_payload,
    read_frame,
    result_to_payload,
)


class ByteSock:
    """A socket double serving a fixed byte string, optionally in
    deliberately tiny chunks (stresses partial-recv reassembly)."""

    def __init__(self, data: bytes, chunk: int = 1 << 16) -> None:
        self._data = data
        self._pos = 0
        self._chunk = chunk

    def recv(self, count: int) -> bytes:
        take = min(count, self._chunk)
        chunk = self._data[self._pos:self._pos + take]
        self._pos += len(chunk)
        return chunk


def frame_bytes(opcode=Opcode.QUERY, request_id=7,
                payload=b'{"text":"SELECT ALL FROM Part VALID AT 5"}'):
    return encode_frame(opcode, request_id, payload)


class TestRoundTrip:
    def test_encode_decode_identity(self):
        payload = encode_payload({"text": "SELECT ALL", "params": {"x": 1}})
        frame = read_frame(ByteSock(frame_bytes(payload=payload)))
        assert frame.opcode == Opcode.QUERY
        assert frame.request_id == 7
        assert frame.payload == payload

    def test_single_byte_recv_chunks_reassemble(self):
        payload = encode_payload({"key": "value " * 100})
        data = frame_bytes(payload=payload)
        frame = read_frame(ByteSock(data, chunk=1))
        assert frame.payload == payload

    def test_empty_payload_is_legal(self):
        frame = read_frame(ByteSock(frame_bytes(payload=b"")))
        assert frame.payload == b""

    def test_back_to_back_frames_parse_independently(self):
        sock = ByteSock(frame_bytes(request_id=1)
                        + frame_bytes(request_id=2))
        assert read_frame(sock).request_id == 1
        assert read_frame(sock).request_id == 2

    def test_canonical_payload_is_key_order_independent(self):
        a = encode_payload({"b": 1, "a": [2, {"y": 3, "x": 4}]})
        b = encode_payload({"a": [2, {"x": 4, "y": 3}], "b": 1})
        assert a == b

    def test_oversized_payload_refused_at_encode_time(self):
        with pytest.raises(ProtocolError):
            encode_frame(Opcode.QUERY, 1, b"x" * (MAX_FRAME_BYTES + 1))


class TestTruncation:
    def test_every_truncation_point_fails_cleanly(self):
        data = frame_bytes()
        for cut in range(1, len(data)):
            with pytest.raises((ProtocolError, ConnectionClosedError)):
                read_frame(ByteSock(data[:cut]))

    def test_eof_at_frame_boundary_is_a_clean_hangup(self):
        with pytest.raises(ConnectionClosedError) as info:
            read_frame(ByteSock(b""))
        assert info.value.mid_frame is False

    def test_eof_inside_a_frame_is_marked_mid_frame(self):
        data = frame_bytes()
        with pytest.raises(ConnectionClosedError) as info:
            read_frame(ByteSock(data[:len(data) // 2]))
        assert info.value.mid_frame is True


class TestCorruption:
    def test_every_single_byte_flip_is_detected(self):
        data = frame_bytes()
        for index in range(4, len(data)):  # skip the length prefix
            corrupted = bytearray(data)
            corrupted[index] ^= 0xFF
            with pytest.raises(ProtocolError):
                read_frame(ByteSock(bytes(corrupted)))

    def test_oversized_length_prefix_fails_before_allocating(self):
        huge = struct.pack("<I", MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="exceeds"):
            read_frame(ByteSock(huge + b"\x00" * 64))

    def test_maximum_length_prefix_fails_not_hangs(self):
        data = struct.pack("<I", 0xFFFFFFFF)
        with pytest.raises(ProtocolError):
            read_frame(ByteSock(data))

    def test_undersized_length_prefix_rejected(self):
        for length in range(0, 9):
            data = struct.pack("<I", length) + b"\x00" * length
            with pytest.raises(ProtocolError, match="minimum"):
                read_frame(ByteSock(data))

    def test_random_garbage_never_escapes_the_error_types(self):
        rng = random.Random(0xC0FFEE)
        for _ in range(300):
            blob = bytes(rng.randrange(256)
                         for _ in range(rng.randrange(1, 64)))
            try:
                read_frame(ByteSock(blob))
            except (ProtocolError, ConnectionClosedError):
                pass  # the only acceptable outcomes

    def test_undecodable_payload_raises_protocol_error(self):
        frame = Frame(Opcode.QUERY, 1, b"\xff\xfe not json")
        with pytest.raises(ProtocolError):
            frame.decode()


class TestErrorPayload:
    def test_carries_class_message_and_transient_flag(self):
        payload = error_payload(ValueError("boom"), transient=True)
        assert payload == {"error": "ValueError", "message": "boom",
                           "transient": True}

    def test_defaults_to_non_transient(self):
        assert error_payload(RuntimeError("x"))["transient"] is False


class TestResultSerialization:
    def test_projected_and_molecule_results_serialize(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "wheel", "cost": 2.0},
                              valid_from=0)
            comp = txn.insert("Component", {"cname": "rim"}, valid_from=0)
            txn.link("contains", part, comp, valid_from=0)
        projected = result_to_payload(
            db.query("SELECT Part.name FROM Part VALID AT 5"))
        assert projected["projected"] is True
        assert projected["entries"][0]["row"] == {"Part.name": "wheel"}
        whole = result_to_payload(
            db.query("SELECT ALL FROM Part.contains.Component "
                     "VALID AT 5"))
        assert whole["projected"] is False
        molecule = whole["entries"][0]["molecule"]
        assert molecule["root"]["values"]["name"] == "wheel"
        # Serialization is canonical: same result, same bytes.
        again = result_to_payload(
            db.query("SELECT ALL FROM Part.contains.Component "
                     "VALID AT 5"))
        assert encode_payload(whole) == encode_payload(again)


class TestProtocolVersioning:
    def test_version_three_is_current_and_older_still_supported(self):
        from repro.server.protocol import (
            PROTOCOL_VERSION,
            SUPPORTED_PROTOCOL_VERSIONS,
        )
        assert PROTOCOL_VERSION == 3
        assert {1, 2, 3} <= SUPPORTED_PROTOCOL_VERSIONS

    def test_stats_opcode_exists(self):
        assert Opcode.STATS == 12
        assert Opcode(12).name == "STATS"

    def test_cursor_opcodes_exist(self):
        assert Opcode.FETCH == 13
        assert Opcode.CLOSE_CURSOR == 14

    def test_v1_payload_without_trace_decodes(self):
        """An old client's frame — no ``trace`` key — round-trips and
        yields an empty trace context, not an error."""
        from repro.server.protocol import extract_trace_context
        data = frame_bytes(payload=encode_payload(
            {"text": "SELECT ALL FROM Part VALID AT 5"}))
        frame = read_frame(ByteSock(data))
        payload = frame.decode()
        assert payload["text"].startswith("SELECT")
        assert extract_trace_context(payload) == (None, None)

    def test_v2_payload_with_trace_round_trips(self):
        from repro.server.protocol import extract_trace_context
        body = {"text": "SELECT ALL FROM Part VALID AT 5",
                "trace": {"trace_id": "a" * 16, "span_id": "b" * 8}}
        frame = read_frame(ByteSock(frame_bytes(
            payload=encode_payload(body))))
        assert extract_trace_context(frame.decode()) == ("a" * 16,
                                                         "b" * 8)


class TestExtractTraceContext:
    def test_malformed_shapes_are_tolerated(self):
        from repro.server.protocol import extract_trace_context
        assert extract_trace_context(None) == (None, None)
        assert extract_trace_context([1, 2]) == (None, None)
        assert extract_trace_context({"trace": "oops"}) == (None, None)
        assert extract_trace_context({"trace": {}}) == (None, None)
        assert extract_trace_context(
            {"trace": {"trace_id": 7, "span_id": ["x"]}}) == (None, None)

    def test_partial_context_keeps_the_valid_half(self):
        from repro.server.protocol import extract_trace_context
        assert extract_trace_context(
            {"trace": {"trace_id": "t" * 16}}) == ("t" * 16, None)


class TestErrorPayloadTraceId:
    def test_trace_id_included_when_given(self):
        payload = error_payload(ValueError("boom"), transient=True,
                                trace_id="c" * 16)
        assert payload["trace_id"] == "c" * 16

    def test_trace_id_omitted_when_absent(self):
        assert "trace_id" not in error_payload(ValueError("boom"))


class TestFrameAssembler:
    """Incremental reassembly must agree with blocking read_frame for
    every possible split of the byte stream."""

    def _frames(self):
        return [
            encode_frame(Opcode.PING, 1, b"{}"),
            encode_frame(Opcode.QUERY, 2, encode_payload(
                {"text": "SELECT ALL FROM Part VALID AT 5"})),
            encode_frame(Opcode.FETCH, 3, encode_payload(
                {"cursor_id": 1})),
        ]

    def test_whole_stream_at_once(self):
        from repro.server.protocol import FrameAssembler
        assembler = FrameAssembler()
        frames = assembler.feed(b"".join(self._frames()))
        assert [(f.opcode, f.request_id) for f in frames] \
            == [(Opcode.PING, 1), (Opcode.QUERY, 2), (Opcode.FETCH, 3)]
        assert assembler.pending_bytes == 0

    def test_split_at_every_byte_boundary(self):
        from repro.server.protocol import FrameAssembler
        stream = b"".join(self._frames())
        for split in range(len(stream) + 1):
            assembler = FrameAssembler()
            frames = assembler.feed(stream[:split])
            frames += assembler.feed(stream[split:])
            assert [(f.opcode, f.request_id) for f in frames] \
                == [(Opcode.PING, 1), (Opcode.QUERY, 2),
                    (Opcode.FETCH, 3)], f"split at {split}"
            assert assembler.pending_bytes == 0

    def test_one_byte_at_a_time(self):
        from repro.server.protocol import FrameAssembler
        assembler = FrameAssembler()
        collected = []
        for offset in b"".join(self._frames()):
            collected += assembler.feed(bytes([offset]))
        assert len(collected) == 3

    def test_corrupt_crc_raises(self):
        from repro.server.protocol import FrameAssembler
        frame = bytearray(encode_frame(Opcode.PING, 1, b"{}"))
        frame[-1] ^= 0xFF
        with pytest.raises(ProtocolError):
            FrameAssembler().feed(bytes(frame))

    def test_oversized_length_prefix_raises(self):
        from repro.server.protocol import FrameAssembler
        bad = struct.pack("<I", MAX_FRAME_BYTES + 1) + b"\x00" * 16
        with pytest.raises(ProtocolError):
            FrameAssembler().feed(bad)

    def test_partial_frame_stays_buffered(self):
        from repro.server.protocol import FrameAssembler
        frame = encode_frame(Opcode.PING, 1, b"{}")
        assembler = FrameAssembler()
        assert assembler.feed(frame[:-3]) == []
        assert assembler.pending_bytes == len(frame) - 3
        assert len(assembler.feed(frame[-3:])) == 1

"""Differential oracle for predicate/projection pushdown.

Every test here runs the same analyzed query twice — once through the
planned pushdown path and once with the pushdown spec stripped (the
legacy decode-then-filter pipeline) — and asserts the results are
identical entry for entry.  The pushdown is a pure optimization: any
observable difference is a bug, so the comparison covers entry order,
validity intervals, molecule shape, and projected rows, across all
three version-storage strategies (the ``db`` fixture parametrizes).
"""

from __future__ import annotations

import threading

import pytest

from repro.mql.analyzer import analyze
from repro.mql.evaluator import execute_plan
from repro.mql.parser import parse_query
from repro.mql.planner import QueryPlan, plan


def _canonical(result):
    return (result.projected,
            [(entry.root_id,
              (entry.valid.start, entry.valid.end),
              entry.molecule.to_dict() if entry.molecule is not None
              else None,
              entry.row)
             for entry in result])


def _differential(db, text):
    """Run *text* with and without pushdown; assert identical results."""
    analyzed = analyze(parse_query(text), db.schema)
    query_plan = plan(analyzed, db.engine)
    pushed = execute_plan(db, query_plan)
    legacy = execute_plan(db, QueryPlan(analyzed, query_plan.root_access))
    assert _canonical(pushed) == _canonical(legacy)
    return pushed, query_plan


@pytest.fixture
def stocked(db):
    """Parts with history: versions that pass and fail the predicates."""
    with db.transaction() as txn:
        parts = []
        for index in range(8):
            parts.append(txn.insert(
                "Part", {"name": f"part{index}", "cost": float(index * 10),
                         "released": index % 2 == 0},
                valid_from=0))
        nocost = txn.insert("Part", {"name": "nocost"}, valid_from=0)
        c1 = txn.insert("Component", {"cname": "hub", "weight": 2.0},
                        valid_from=0)
        c2 = txn.insert("Component", {"cname": "rim", "weight": 9.0},
                        valid_from=3)
        txn.link("contains", parts[0], c1, valid_from=0)
        txn.link("contains", parts[1], c2, valid_from=3)
    with db.transaction() as txn:
        # Later versions cross the predicate boundary both ways.
        txn.update(parts[0], {"cost": 500.0}, valid_from=10)
        txn.update(parts[7], {"cost": 1.0}, valid_from=10)
        txn.delete(parts[2], valid_from=5)
    return {"db": db, "parts": parts, "nocost": nocost}


SLICE_QUERIES = [
    "SELECT ALL FROM Part WHERE Part.cost > 35 VALID AT 1",
    "SELECT ALL FROM Part WHERE Part.cost > 35 VALID AT 12",
    "SELECT ALL FROM Part WHERE Part.cost <= 10 VALID AT 12",
    "SELECT ALL FROM Part WHERE Part.name = 'part3' VALID AT 1",
    "SELECT ALL FROM Part WHERE Part.released = TRUE VALID AT 1",
    "SELECT ALL FROM Part WHERE Part.cost = NULL VALID AT 1",
    "SELECT ALL FROM Part WHERE Part.cost != NULL VALID AT 1",
    "SELECT ALL FROM Part WHERE Part.cost > 20 AND Part.released = TRUE "
    "VALID AT 1",
    "SELECT ALL FROM Part WHERE Part.cost > 20 OR Part.released = TRUE "
    "VALID AT 1",
    "SELECT ALL FROM Part WHERE NOT Part.cost > 20 VALID AT 1",
    "SELECT Part.name, Part.cost FROM Part WHERE Part.cost >= 40 "
    "VALID AT 1",
    "SELECT Part.name FROM Part VALID AT 12",
    "SELECT ALL FROM Part.contains.Component "
    "WHERE Component.weight > 5 VALID AT 4",
    "SELECT Part.name, Component.cname FROM Part.contains.Component "
    "WHERE Part.cost < 50 VALID AT 4",
]

WINDOW_QUERIES = [
    "SELECT ALL FROM Part WHERE Part.cost > 35 VALID DURING [0, 20)",
    "SELECT ALL FROM Part WHERE Part.cost = NULL VALID DURING [0, 20)",
    "SELECT ALL FROM Part WHERE Part.name = 'part0' VALID HISTORY",
    "SELECT ALL FROM Part WHERE Part.cost <= 10 VALID HISTORY",
]


class TestDifferentialOracle:
    @pytest.mark.parametrize("text", SLICE_QUERIES)
    def test_slice_matches_legacy(self, stocked, text):
        _differential(stocked["db"], text)

    @pytest.mark.parametrize("text", WINDOW_QUERIES)
    def test_window_matches_legacy(self, stocked, text):
        _differential(stocked["db"], text)

    def test_selective_predicate_skips_decodes(self, stocked):
        db = stocked["db"]
        before = db.metrics.value("engine.pushdown.skipped")
        pushed, query_plan = _differential(
            db, "SELECT ALL FROM Part WHERE Part.name = 'part3' VALID AT 1")
        assert query_plan.pushdown is not None
        assert query_plan.pushdown.comparisons
        assert db.metrics.value("engine.pushdown.skipped") > before
        assert len(pushed) == 1

    def test_as_of_disables_pushdown(self, stocked):
        db = stocked["db"]
        text = ("SELECT ALL FROM Part WHERE Part.cost > 35 "
                "VALID AT 1 AS OF 1")
        analyzed = analyze(parse_query(text), db.schema)
        query_plan = plan(analyzed, db.engine)
        assert query_plan.pushdown is None

    def test_child_typed_comparison_is_not_pushed(self, stocked):
        db = stocked["db"]
        text = ("SELECT ALL FROM Part.contains.Component "
                "WHERE Component.weight > 5 VALID AT 4")
        analyzed = analyze(parse_query(text), db.schema)
        query_plan = plan(analyzed, db.engine)
        if query_plan.pushdown is not None:
            assert not query_plan.pushdown.comparisons

    def test_projection_never_leaks_partial_decodes(self, stocked):
        db = stocked["db"]
        # Populate the decode cache with projected (partial) entries...
        _differential(
            db, "SELECT Part.name FROM Part WHERE Part.cost >= 0 VALID AT 1")
        # ...then a SELECT ALL must still see every attribute: a partial
        # entry keyed as a full one would surface molecules with
        # missing attributes here.
        full = db.query("SELECT ALL FROM Part VALID AT 1")
        assert len(full) > 0
        for entry in full:
            values = entry.molecule.root.version.values
            assert "released" in values
            assert "cost" in values

    def test_batched_index_writes_visible_and_persisted(self, stocked):
        db = stocked["db"]
        db.create_attribute_index("Part", "name")
        before = db.metrics.value("index.batch_inserts")
        with db.transaction() as txn:
            txn.insert("Part", {"name": "fresh", "cost": 7.0}, valid_from=0)
        assert db.metrics.value("index.batch_inserts") > before
        result = db.query(
            "SELECT Part.cost FROM Part WHERE Part.name = 'fresh' "
            "VALID AT 1")
        assert [row["Part.cost"] for row in result.rows()] == [7.0]
        db.indexes.check_all()

    def test_pending_index_entries_visible_before_flush(self, stocked):
        db = stocked["db"]
        db.create_attribute_index("Part", "name")
        txn = db.begin()
        atom = txn.insert("Part", {"name": "inflight", "cost": 3.0},
                          valid_from=0)
        # Mid-transaction the entry is still buffered, but index
        # lookups must already see it — batching is invisible to reads.
        before_flush = db.query(
            "SELECT Part.cost FROM Part WHERE Part.name = 'inflight' "
            "VALID AT 1")
        assert before_flush.root_ids() == [atom]
        txn.commit()
        after_flush = db.query(
            "SELECT Part.cost FROM Part WHERE Part.name = 'inflight' "
            "VALID AT 1")
        assert after_flush.root_ids() == [atom]


class TestConcurrentWriter:
    def test_differential_under_concurrent_revisions(self, stocked):
        db = stocked["db"]
        parts = stocked["parts"]
        stop = threading.Event()
        failures = []

        def writer():
            cost = 1000.0
            try:
                while not stop.is_set():
                    with db.transaction() as txn:
                        txn.update(parts[3], {"cost": cost}, valid_from=20)
                    cost += 1.0
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            text = "SELECT ALL FROM Part WHERE Part.cost > 35 VALID AT 25"
            analyzed = analyze(parse_query(text), db.schema)
            query_plan = plan(analyzed, db.engine)
            stripped = QueryPlan(analyzed, query_plan.root_access)
            for _ in range(60):
                # One consistent snapshot per pair: the writer commits
                # between iterations, never inside one.
                with db._state_latch.read():
                    pushed = execute_plan(db, query_plan)
                    legacy = execute_plan(db, stripped)
                assert _canonical(pushed) == _canonical(legacy)
        finally:
            stop.set()
            thread.join(10)
        assert not thread.is_alive()
        assert not failures


class TestCacheKeying:
    def test_partial_and_full_entries_do_not_alias(self, stocked):
        db = stocked["db"]
        engine = db.engine
        engine._decode_cache.clear()
        db.query(
            "SELECT Part.name FROM Part WHERE Part.cost >= 0 VALID AT 1")
        misses_after_projected = db.metrics.value(
            "engine.decode_cache.misses")
        db.query("SELECT ALL FROM Part VALID AT 1")
        # The full query cannot be served from partial entries: it must
        # miss and decode fully at least once.
        assert (db.metrics.value("engine.decode_cache.misses")
                > misses_after_projected)

"""Decoded-version cache: correctness across every invalidation path.

The engine memoizes decoded versions by ``(atom_id, seq)`` and atom type
names by atom id.  A stale entry would silently serve old state, so
every route that rewrites stored bytes — update/correct/delete,
transaction rollback (undo), recovery replay, and vacuum — must drop the
atom's entries.  These tests drive each route and verify reads through
the cache match ground truth, alongside the cache's own metrics.
"""

from __future__ import annotations

import pytest

from repro import DatabaseConfig, TemporalDatabase
from repro.core.engine import DecodedVersionCache
from repro.errors import UnknownAtomError
from repro.temporal import FOREVER
from repro.tools.vacuum import vacuum_superseded


def _insert_part(db, name="wheel", cost=1.0, valid_from=0):
    with db.transaction() as txn:
        return txn.insert("Part", {"name": name, "cost": cost},
                          valid_from=valid_from)


def _cache_counters(db):
    metrics = db.metrics
    return {
        "hits": metrics.value("engine.decode_cache.hits"),
        "misses": metrics.value("engine.decode_cache.misses"),
        "invalidations": metrics.value("engine.decode_cache.invalidations"),
    }


class TestCacheServesAndCounts:
    def test_repeated_reads_hit_the_cache(self, db):
        part = _insert_part(db)
        before = _cache_counters(db)
        first = db.version_at(part, 5)
        between = _cache_counters(db)
        second = db.version_at(part, 5)
        after = _cache_counters(db)
        assert first.values == second.values
        assert between["misses"] > before["misses"]
        assert after["hits"] > between["hits"]

    def test_mutations_count_invalidations(self, db):
        part = _insert_part(db)
        db.version_at(part, 5)
        before = _cache_counters(db)
        with db.transaction() as txn:
            txn.update(part, {"cost": 9.0}, valid_from=0)
        after = _cache_counters(db)
        assert after["invalidations"] > before["invalidations"]


class TestMutationInvalidation:
    def test_update_is_visible_through_the_cache(self, db):
        part = _insert_part(db, cost=1.0)
        assert db.version_at(part, 5).values["cost"] == 1.0
        with db.transaction() as txn:
            txn.update(part, {"cost": 2.5}, valid_from=0)
        assert db.version_at(part, 5).values["cost"] == 2.5

    def test_correct_is_visible_through_the_cache(self, db):
        part = _insert_part(db, cost=1.0)
        assert db.version_at(part, 5).values["cost"] == 1.0
        with db.transaction() as txn:
            txn.correct(part, 0, FOREVER, {"cost": 3.0})
        assert db.version_at(part, 5).values["cost"] == 3.0

    def test_delete_is_visible_through_the_cache(self, db):
        part = _insert_part(db)
        assert db.version_at(part, 5) is not None
        with db.transaction() as txn:
            txn.delete(part, valid_from=0)
        assert db.version_at(part, 5) is None

    def test_history_reads_track_mutations(self, db):
        part = _insert_part(db, cost=1.0)
        assert len(db.history(part)) == 1
        with db.transaction() as txn:
            txn.update(part, {"cost": 2.0}, valid_from=10)
        history = db.history(part)
        assert len(history) > 1
        # Re-read through the now-warm cache: identical content.
        again = db.history(part)
        assert [v.values for v in history] == [v.values for v in again]


class TestRollbackInvalidation:
    def test_abort_undoes_update_without_stale_reads(self, db):
        part = _insert_part(db, cost=1.0)
        assert db.version_at(part, 5).values["cost"] == 1.0
        txn = db.begin()
        txn.update(part, {"cost": 99.0}, valid_from=0)
        # Inside the transaction the new value is cached...
        assert txn.version_at(part, 5).values["cost"] == 99.0
        txn.abort()
        # ...and the undo must have dropped it again.
        assert db.version_at(part, 5).values["cost"] == 1.0

    def test_abort_undoes_insert(self, db):
        txn = db.begin()
        part = txn.insert("Part", {"name": "ghost"}, valid_from=0)
        assert txn.version_at(part, 5) is not None
        txn.abort()
        assert db.version_at(part, 5) is None
        with pytest.raises(UnknownAtomError):
            db.engine.atom_type_name(part)

    def test_abort_undoes_link(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "p"}, valid_from=0)
            comp = txn.insert("Component", {"cname": "c"}, valid_from=0)
        db.version_at(part, 5)  # warm the cache
        txn = db.begin()
        txn.link("contains", part, comp, valid_from=0)
        txn.abort()
        version = db.version_at(part, 5)
        assert not version.refs


class TestRecoveryInvalidation:
    def test_replayed_state_reads_correctly(self, tmp_path, cad_schema,
                                            strategy):
        db = TemporalDatabase.create(
            str(tmp_path / "crashdb"), cad_schema,
            DatabaseConfig(strategy=strategy, buffer_pages=32))
        part = _insert_part(db, cost=1.0)
        db.checkpoint()
        db.version_at(part, 5)  # warm caches before the post-checkpoint work
        with db.transaction() as txn:
            txn.update(part, {"cost": 7.0}, valid_from=0)
        assert db.version_at(part, 5).values["cost"] == 7.0
        # Crash: abandon without close; reopen replays through the engine.
        db._wal._file.flush()
        db._disk._file.flush()
        recovered = TemporalDatabase.open(str(tmp_path / "crashdb"))
        assert recovered.last_recovery is not None
        assert recovered.version_at(part, 5).values["cost"] == 7.0
        assert recovered.version_at(part, 5).values["cost"] == 7.0
        recovered.close()


class TestVacuumInvalidation:
    def test_vacuum_rewrite_does_not_leave_stale_decodes(self, db):
        part = _insert_part(db, cost=1.0)
        with db.transaction() as txn:
            txn.update(part, {"cost": 2.0}, valid_from=0)
        with db.transaction() as txn:
            txn.update(part, {"cost": 3.0}, valid_from=0)
        # Warm the cache with the full pre-vacuum history.
        before = db.history(part)
        assert db.version_at(part, 5).values["cost"] == 3.0
        cutoff = db._clock.now()
        report = vacuum_superseded(db, cutoff)
        assert report.versions_removed > 0
        # Sequence numbers shifted under the rewrite: reads must reflect
        # the compacted store, not the cached pre-vacuum decodes.
        after = db.history(part)
        assert len(after) == len(before) - report.versions_removed
        assert db.version_at(part, 5).values["cost"] == 3.0


class TestTypeNameMap:
    def test_unknown_atom_still_raises(self, db):
        with pytest.raises(UnknownAtomError):
            db.engine.atom_type_name(424242)

    def test_repeat_lookups_avoid_record_reads(self, db):
        part = _insert_part(db)
        db.engine.atom_type_name(part)  # populate the map
        reads_before = db.metrics.total("heap.record_reads")
        for _ in range(5):
            assert db.engine.atom_type_name(part) == "Part"
        assert db.metrics.total("heap.record_reads") == reads_before


class TestEviction:
    def test_tiny_cache_stays_correct(self, db):
        db.engine._decode_cache = DecodedVersionCache(2, db.metrics)
        parts = [_insert_part(db, name=f"p{i}", cost=float(i))
                 for i in range(6)]
        for index, part in enumerate(parts):
            assert db.version_at(part, 5).values["cost"] == float(index)
        # Sweep again in reverse so every read churns the 2-entry LRU.
        for index, part in reversed(list(enumerate(parts))):
            assert db.version_at(part, 5).values["cost"] == float(index)
        assert len(db.engine._decode_cache) <= 2

    def test_lru_capacity_is_enforced(self):
        from repro.obs import MetricsRegistry
        cache = DecodedVersionCache(3, MetricsRegistry())
        for atom_id in range(5):
            cache.put(atom_id, 0, "Part", object())
        assert len(cache) == 3
        assert cache.get(0, 0) is None      # evicted
        assert cache.get(4, 0) is not None  # newest survives

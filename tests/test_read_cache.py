"""Decoded-version cache: correctness across every invalidation path.

The engine memoizes decoded versions by ``(atom_id, seq)`` and atom type
names by atom id.  A stale entry would silently serve old state, so
every route that rewrites stored bytes — update/correct/delete,
transaction rollback (undo), recovery replay, and vacuum — must drop the
atom's entries.  These tests drive each route and verify reads through
the cache match ground truth, alongside the cache's own metrics.
"""

from __future__ import annotations

import pytest

from repro import DatabaseConfig, TemporalDatabase
from repro.core.engine import (
    DECODE_CACHE_ENTRY_OVERHEAD,
    DecodedVersionCache,
)
from repro.errors import UnknownAtomError
from repro.temporal import FOREVER
from repro.tools.vacuum import vacuum_superseded


def _insert_part(db, name="wheel", cost=1.0, valid_from=0):
    with db.transaction() as txn:
        return txn.insert("Part", {"name": name, "cost": cost},
                          valid_from=valid_from)


def _cache_counters(db):
    metrics = db.metrics
    return {
        "hits": metrics.value("engine.decode_cache.hits"),
        "misses": metrics.value("engine.decode_cache.misses"),
        "invalidations": metrics.value("engine.decode_cache.invalidations"),
    }


class TestCacheServesAndCounts:
    def test_repeated_reads_hit_the_cache(self, db):
        part = _insert_part(db)
        before = _cache_counters(db)
        first = db.version_at(part, 5)
        between = _cache_counters(db)
        second = db.version_at(part, 5)
        after = _cache_counters(db)
        assert first.values == second.values
        assert between["misses"] > before["misses"]
        assert after["hits"] > between["hits"]

    def test_mutations_count_invalidations(self, db):
        part = _insert_part(db)
        db.version_at(part, 5)
        before = _cache_counters(db)
        with db.transaction() as txn:
            txn.update(part, {"cost": 9.0}, valid_from=0)
        after = _cache_counters(db)
        assert after["invalidations"] > before["invalidations"]


class TestMutationInvalidation:
    def test_update_is_visible_through_the_cache(self, db):
        part = _insert_part(db, cost=1.0)
        assert db.version_at(part, 5).values["cost"] == 1.0
        with db.transaction() as txn:
            txn.update(part, {"cost": 2.5}, valid_from=0)
        assert db.version_at(part, 5).values["cost"] == 2.5

    def test_correct_is_visible_through_the_cache(self, db):
        part = _insert_part(db, cost=1.0)
        assert db.version_at(part, 5).values["cost"] == 1.0
        with db.transaction() as txn:
            txn.correct(part, 0, FOREVER, {"cost": 3.0})
        assert db.version_at(part, 5).values["cost"] == 3.0

    def test_delete_is_visible_through_the_cache(self, db):
        part = _insert_part(db)
        assert db.version_at(part, 5) is not None
        with db.transaction() as txn:
            txn.delete(part, valid_from=0)
        assert db.version_at(part, 5) is None

    def test_history_reads_track_mutations(self, db):
        part = _insert_part(db, cost=1.0)
        assert len(db.history(part)) == 1
        with db.transaction() as txn:
            txn.update(part, {"cost": 2.0}, valid_from=10)
        history = db.history(part)
        assert len(history) > 1
        # Re-read through the now-warm cache: identical content.
        again = db.history(part)
        assert [v.values for v in history] == [v.values for v in again]


class TestRollbackInvalidation:
    def test_abort_undoes_update_without_stale_reads(self, db):
        part = _insert_part(db, cost=1.0)
        assert db.version_at(part, 5).values["cost"] == 1.0
        txn = db.begin()
        txn.update(part, {"cost": 99.0}, valid_from=0)
        # Inside the transaction the new value is cached...
        assert txn.version_at(part, 5).values["cost"] == 99.0
        txn.abort()
        # ...and the undo must have dropped it again.
        assert db.version_at(part, 5).values["cost"] == 1.0

    def test_abort_undoes_insert(self, db):
        txn = db.begin()
        part = txn.insert("Part", {"name": "ghost"}, valid_from=0)
        assert txn.version_at(part, 5) is not None
        txn.abort()
        assert db.version_at(part, 5) is None
        with pytest.raises(UnknownAtomError):
            db.engine.atom_type_name(part)

    def test_abort_undoes_link(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "p"}, valid_from=0)
            comp = txn.insert("Component", {"cname": "c"}, valid_from=0)
        db.version_at(part, 5)  # warm the cache
        txn = db.begin()
        txn.link("contains", part, comp, valid_from=0)
        txn.abort()
        version = db.version_at(part, 5)
        assert not version.refs


class TestRecoveryInvalidation:
    def test_replayed_state_reads_correctly(self, tmp_path, cad_schema,
                                            strategy):
        db = TemporalDatabase.create(
            str(tmp_path / "crashdb"), cad_schema,
            DatabaseConfig(strategy=strategy, buffer_pages=32))
        part = _insert_part(db, cost=1.0)
        db.checkpoint()
        db.version_at(part, 5)  # warm caches before the post-checkpoint work
        with db.transaction() as txn:
            txn.update(part, {"cost": 7.0}, valid_from=0)
        assert db.version_at(part, 5).values["cost"] == 7.0
        # Crash: abandon without close; reopen replays through the engine.
        db._wal._file.flush()
        db._disk._file.flush()
        recovered = TemporalDatabase.open(str(tmp_path / "crashdb"))
        assert recovered.last_recovery is not None
        assert recovered.version_at(part, 5).values["cost"] == 7.0
        assert recovered.version_at(part, 5).values["cost"] == 7.0
        recovered.close()


class TestVacuumInvalidation:
    def test_vacuum_rewrite_does_not_leave_stale_decodes(self, db):
        part = _insert_part(db, cost=1.0)
        with db.transaction() as txn:
            txn.update(part, {"cost": 2.0}, valid_from=0)
        with db.transaction() as txn:
            txn.update(part, {"cost": 3.0}, valid_from=0)
        # Warm the cache with the full pre-vacuum history.
        before = db.history(part)
        assert db.version_at(part, 5).values["cost"] == 3.0
        cutoff = db._clock.now()
        report = vacuum_superseded(db, cutoff)
        assert report.versions_removed > 0
        # Sequence numbers shifted under the rewrite: reads must reflect
        # the compacted store, not the cached pre-vacuum decodes.
        after = db.history(part)
        assert len(after) == len(before) - report.versions_removed
        assert db.version_at(part, 5).values["cost"] == 3.0


class TestTypeNameMap:
    def test_unknown_atom_still_raises(self, db):
        with pytest.raises(UnknownAtomError):
            db.engine.atom_type_name(424242)

    def test_repeat_lookups_avoid_record_reads(self, db):
        part = _insert_part(db)
        db.engine.atom_type_name(part)  # populate the map
        reads_before = db.metrics.total("heap.record_reads")
        for _ in range(5):
            assert db.engine.atom_type_name(part) == "Part"
        assert db.metrics.total("heap.record_reads") == reads_before


class TestEviction:
    def test_tiny_cache_stays_correct(self, db):
        # A budget of two entries' worth of bytes: every read churns the
        # LRU, and correctness must not depend on residency.
        budget = 2 * (DECODE_CACHE_ENTRY_OVERHEAD + 80)
        db.engine._decode_cache = DecodedVersionCache(budget, db.metrics)
        parts = [_insert_part(db, name=f"p{i}", cost=float(i))
                 for i in range(6)]
        for index, part in enumerate(parts):
            assert db.version_at(part, 5).values["cost"] == float(index)
        for index, part in reversed(list(enumerate(parts))):
            assert db.version_at(part, 5).values["cost"] == float(index)
        assert db.engine._decode_cache.bytes_used <= budget

    def test_lru_byte_budget_is_enforced(self):
        from repro.obs import MetricsRegistry
        per_entry = DECODE_CACHE_ENTRY_OVERHEAD + 100
        cache = DecodedVersionCache(3 * per_entry, MetricsRegistry())
        for atom_id in range(5):
            cache.put(atom_id, 0, "Part", object(), nbytes=100)
        assert len(cache) == 3
        assert cache.bytes_used == 3 * per_entry
        assert cache.get(0, 0) is None      # evicted
        assert cache.get(4, 0) is not None  # newest survives

    def test_oversized_entry_is_not_cached(self):
        from repro.obs import MetricsRegistry
        cache = DecodedVersionCache(1024, MetricsRegistry())
        cache.put(1, 0, "Part", object(), nbytes=4096)
        assert len(cache) == 0
        assert cache.bytes_used == 0

    def test_wide_values_charge_more_than_narrow_ones(self, db):
        cache = db.engine._decode_cache
        _insert_part(db, name="x")
        narrow = cache.bytes_used
        assert narrow == 0  # writes do not populate the cache
        part = _insert_part(db, name="y")
        db.version_at(part, 5)
        after_narrow = cache.bytes_used
        wide = _insert_part(db, name="z" * 500)
        db.version_at(wide, 5)
        after_wide = cache.bytes_used
        assert after_wide - after_narrow > after_narrow


class TestByteAccounting:
    def test_gauge_tracks_occupancy(self, db):
        part = _insert_part(db)
        assert db.metrics._gauges  # gauge registered at engine build
        db.version_at(part, 5)
        used = db.engine._decode_cache.bytes_used
        assert used > 0
        gauge = db.metrics.gauge("engine.decode_cache.bytes")
        assert gauge.value == used

    def test_invalidation_returns_bytes(self, db):
        part = _insert_part(db)
        db.version_at(part, 5)
        assert db.engine._decode_cache.bytes_used > 0
        with db.transaction() as txn:
            txn.update(part, {"cost": 2.0}, valid_from=0)
        # The atom's cached decodes were dropped with their bytes.
        gauge = db.metrics.gauge("engine.decode_cache.bytes")
        assert gauge.value == db.engine._decode_cache.bytes_used

    def test_clear_zeroes_bytes_and_gauge(self, db):
        part = _insert_part(db)
        db.version_at(part, 5)
        db.engine._decode_cache.clear()
        assert db.engine._decode_cache.bytes_used == 0
        assert db.metrics.gauge("engine.decode_cache.bytes").value == 0

    def test_config_knob_reaches_the_engine(self, tmp_path, cad_schema):
        db = TemporalDatabase.create(
            str(tmp_path / "knobdb"), cad_schema,
            DatabaseConfig(decode_cache_bytes=4096))
        try:
            assert db.engine._decode_cache.capacity_bytes == 4096
        finally:
            db.close()

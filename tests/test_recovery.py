"""Crash-recovery tests: simulated crashes with steal, torn logs, and
checkpoint interplay.

A "crash" drops the database object without closing it (after forcing
the WAL's OS buffers, which a commit does anyway), optionally after
flushing dirty pages of uncommitted transactions — the steal scenario a
recovery scheme must survive.
"""

import pytest

from repro import DatabaseConfig, TemporalDatabase, VersionStrategy


def crash(db):
    """Abandon the database as a crash would: nothing is cleaned up."""
    db._wal._file.flush()
    db._disk._file.flush()


@pytest.fixture
def make_db(tmp_path, cad_schema, strategy):
    def factory():
        return TemporalDatabase.create(
            str(tmp_path / "crashdb"), cad_schema,
            DatabaseConfig(strategy=strategy, buffer_pages=32))
    return factory


def reopen(tmp_path):
    return TemporalDatabase.open(str(tmp_path / "crashdb"))


class TestCommittedWorkSurvives:
    def test_committed_transactions_replay(self, make_db, tmp_path):
        db = make_db()
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "v1", "cost": 1.0},
                              valid_from=0)
        with db.transaction() as txn:
            txn.update(part, {"cost": 2.0}, valid_from=10)
        crash(db)
        recovered = reopen(tmp_path)
        assert recovered.last_recovery is not None
        assert recovered.last_recovery["operations"] == 2
        assert recovered.version_at(part, 5).values["cost"] == 1.0
        assert recovered.version_at(part, 15).values["cost"] == 2.0
        recovered.close()

    def test_links_replay(self, make_db, tmp_path):
        db = make_db()
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "p"}, valid_from=0)
            hub = txn.insert("Component", {"cname": "h"}, valid_from=0)
            txn.link("contains", part, hub, valid_from=0)
        crash(db)
        recovered = reopen(tmp_path)
        molecule = recovered.molecule_at(part, "Part.contains.Component", 5)
        assert molecule.atom_count() == 2
        recovered.close()

    def test_corrections_replay_with_same_tt(self, make_db, tmp_path):
        db = make_db()
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "p", "cost": 1.0},
                              valid_from=0)
        tt_before = db._clock.now()
        with db.transaction() as txn:
            txn.correct(part, 0, 10, {"cost": 9.0})
        crash(db)
        recovered = reopen(tmp_path)
        assert recovered.version_at(part, 5).values["cost"] == 9.0
        assert recovered.version_at(
            part, 5, tt=tt_before - 1).values["cost"] == 1.0
        recovered.close()


class TestUncommittedWorkDiscarded:
    def test_uncommitted_txn_discarded(self, make_db, tmp_path):
        db = make_db()
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "keep"}, valid_from=0)
        open_txn = db.begin()
        open_txn.update(part, {"name": "uncommitted"}, valid_from=5)
        open_txn.insert("Part", {"name": "ghost"}, valid_from=0)
        crash(db)
        recovered = reopen(tmp_path)
        assert recovered.version_at(part, 10).values["name"] == "keep"
        assert len(recovered.atoms_of_type("Part")) == 1
        recovered.close()

    def test_steal_uncommitted_pages_flushed(self, make_db, tmp_path):
        """Dirty pages of an open transaction reach disk, then crash."""
        db = make_db()
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "keep"}, valid_from=0)
        open_txn = db.begin()
        open_txn.update(part, {"name": "dirty"}, valid_from=5)
        db.buffer.flush_all()  # steal: uncommitted state hits the page file
        crash(db)
        recovered = reopen(tmp_path)
        assert recovered.version_at(part, 10).values["name"] == "keep"
        recovered.close()

    def test_explicitly_aborted_txn_stays_aborted(self, make_db, tmp_path):
        db = make_db()
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "keep"}, valid_from=0)
        txn = db.begin()
        txn.update(part, {"name": "no"}, valid_from=5)
        txn.abort()
        crash(db)
        recovered = reopen(tmp_path)
        assert recovered.version_at(part, 10).values["name"] == "keep"
        recovered.close()


class TestCheckpointInterplay:
    def test_work_before_checkpoint_not_replayed(self, make_db, tmp_path):
        db = make_db()
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "a"}, valid_from=0)
        db.checkpoint()
        with db.transaction() as txn:
            txn.update(part, {"name": "b"}, valid_from=10)
        crash(db)
        recovered = reopen(tmp_path)
        # Only the post-checkpoint transaction replays.
        assert recovered.last_recovery["operations"] == 1
        assert recovered.version_at(part, 5).values["name"] == "a"
        assert recovered.version_at(part, 15).values["name"] == "b"
        recovered.close()

    def test_crash_with_no_work_after_checkpoint(self, make_db, tmp_path):
        db = make_db()
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "a"}, valid_from=0)
        db.checkpoint()
        crash(db)
        recovered = reopen(tmp_path)
        assert recovered.version_at(part, 5).values["name"] == "a"
        recovered.close()

    def test_double_crash(self, make_db, tmp_path):
        """Crash during normal work, recover, crash again, recover again."""
        db = make_db()
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "a", "cost": 1.0},
                              valid_from=0)
        crash(db)
        recovered = reopen(tmp_path)
        with recovered.transaction() as txn:
            txn.update(part, {"cost": 2.0}, valid_from=10)
        crash(recovered)
        final = reopen(tmp_path)
        assert final.version_at(part, 5).values["cost"] == 1.0
        assert final.version_at(part, 15).values["cost"] == 2.0
        final.close()

    def test_new_work_after_recovery_gets_fresh_ids(self, make_db,
                                                    tmp_path):
        db = make_db()
        with db.transaction() as txn:
            first = txn.insert("Part", {"name": "a"}, valid_from=0)
        crash(db)
        recovered = reopen(tmp_path)
        with recovered.transaction() as txn:
            second = txn.insert("Part", {"name": "b"}, valid_from=0)
        assert second > first
        assert len(recovered.atoms_of_type("Part")) == 2
        recovered.close()


class TestTornLog:
    def test_torn_commit_record_discards_txn(self, make_db, tmp_path):
        db = make_db()
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "keep"}, valid_from=0)
        with db.transaction() as txn:
            txn.update(part, {"name": "almost"}, valid_from=5)
        crash(db)
        # Saw off the tail of the log, destroying the COMMIT record of
        # the second transaction.
        wal_path = tmp_path / "crashdb" / "wal.log"
        raw = wal_path.read_bytes()
        wal_path.write_bytes(raw[:-10])
        recovered = reopen(tmp_path)
        assert recovered.version_at(part, 10).values["name"] == "keep"
        recovered.close()


class TestReplayIdempotence:
    """The replication replay path: the engine's monotone
    ``applied_replay_lsn`` guard plus quiescent-bounded ranges make
    re-replaying an overlapping range a no-op."""

    def test_rereplay_applies_nothing(self, make_db, tmp_path):
        from repro.txn.recovery import replay_operations

        db = make_db()
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "once", "cost": 1.0},
                              valid_from=0)
        with db.transaction() as txn:
            txn.update(part, {"cost": 2.0}, valid_from=5)
        crash(db)
        recovered = reopen(tmp_path)
        versions = len(recovered.history(part))
        guard = recovered.engine.applied_replay_lsn
        assert guard > 0  # recovery advanced the watermark
        # Replaying the whole log again must skip every operation.
        summary = replay_operations(recovered.engine, recovered._wal, 0)
        assert summary["operations"] == 0
        assert len(recovered.history(part)) == versions
        assert recovered.engine.applied_replay_lsn == guard
        recovered.close()

    def test_quiescent_scan_respects_straddling_txns(self, tmp_path):
        from repro.txn.recovery import _scan_commit_state
        from repro.txn.wal import LogRecordType, WriteAheadLog

        with WriteAheadLog(tmp_path / "q.log",
                           sync_on_commit=False) as wal:
            wal.append(LogRecordType.BEGIN, 1, {"tt": 1})      # lsn 1
            wal.append(LogRecordType.OPERATION, 1, {"op": "x"})  # 2
            wal.append(LogRecordType.BEGIN, 2, {"tt": 2})      # 3
            wal.append(LogRecordType.COMMIT, 1)                # 4: t2 open
            wal.append(LogRecordType.OPERATION, 2, {"op": "y"})  # 5
            committed, quiescent, last = _scan_commit_state(wal, 0, None)
            assert committed == {1}
            assert quiescent == 0  # t1 or t2 straddles every lsn so far
            assert last == 5
            wal.append(LogRecordType.COMMIT, 2)                # 6
            committed, quiescent, last = _scan_commit_state(wal, 0, None)
            assert committed == {1, 2}
            assert quiescent == 6
            assert last == 6

    def test_quiescent_only_replay_defers_straddled_commit(
            self, make_db, tmp_path):
        """quiescent_only replay must not apply a transaction whose
        records interleave with a still-open one — even though its
        COMMIT is on disk — or a later monotone-guard replay would
        skip the open transaction's earlier operations."""
        from repro.txn.recovery import replay_operations
        from repro.txn.wal import LogRecordType

        db = make_db()
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "base"}, valid_from=0)
        crash(db)
        recovered = reopen(tmp_path)
        # Hand-append an interleaving: t8 opens, t9 opens+commits
        # inside it, t8 never commits.
        wal = recovered._wal
        wal.append(LogRecordType.BEGIN, 8, {"tt": 50})
        wal.append(LogRecordType.BEGIN, 9, {"tt": 51})
        wal.append(LogRecordType.OPERATION, 9,
                   {"op": "update", "atom_id": part,
                    "changes": {"name": "nine"}, "vf": 60,
                    "vt": None, "tt": 51})
        wal.append(LogRecordType.COMMIT, 9)
        before = recovered.engine.applied_replay_lsn
        summary = replay_operations(recovered.engine, wal, before,
                                    quiescent_only=True)
        assert summary["operations"] == 0  # t8 still straddles
        assert recovered.engine.applied_replay_lsn == before
        recovered.close()

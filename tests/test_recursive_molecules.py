"""Tests for bounded recursive molecule types (``Part.part_of[n].Part``)."""

import pytest

from repro import (
    AtomType,
    Attribute,
    DataType,
    LinkType,
    MoleculeType,
    Schema,
    TemporalDatabase,
)
from repro.errors import InvalidMoleculeTypeError, ParseError
from repro.testing import ReferenceDatabase


@pytest.fixture
def bom_schema():
    schema = Schema("rec")
    schema.add_atom_type(AtomType("Part", [
        Attribute("name", DataType.STRING, required=True)]))
    schema.add_link_type(LinkType("part_of", "Part", "Part"))
    return schema


@pytest.fixture
def assembly(bom_schema):
    """A four-level containment chain plus a branch:

    bike -> frame -> tube -> weld
                  -> joint
    """
    ref = ReferenceDatabase(bom_schema)
    names = {}
    for name in ("bike", "frame", "tube", "weld", "joint"):
        names[name] = ref.insert("Part", {"name": name}, valid_from=0)
    ref.link("part_of", names["bike"], names["frame"], valid_from=0)
    ref.link("part_of", names["frame"], names["tube"], valid_from=0)
    ref.link("part_of", names["frame"], names["joint"], valid_from=0)
    ref.link("part_of", names["tube"], names["weld"], valid_from=0)
    return ref, names


def molecule_names(molecule):
    return sorted(atom.version.values["name"] for atom in molecule.atoms())


class TestParsing:
    def test_bounded_recursion_parses(self, bom_schema):
        mtype = MoleculeType.parse("Part.part_of[3].Part", bom_schema)
        (edge,) = mtype.edges
        assert edge.is_recursive and edge.max_depth == 3

    def test_unbounded_self_edge_defaults_to_one(self, bom_schema):
        mtype = MoleculeType.parse("Part.part_of.Part", bom_schema)
        assert mtype.edges[0].max_depth == 1

    def test_zero_bound_rejected(self, bom_schema):
        with pytest.raises(ParseError):
            MoleculeType.parse("Part.part_of[0].Part", bom_schema)

    def test_unbalanced_bracket_rejected(self, bom_schema):
        with pytest.raises(ParseError):
            MoleculeType.parse("Part.part_of[3.Part", bom_schema)

    def test_bound_on_non_recursive_edge_rejected(self, cad_schema):
        with pytest.raises(InvalidMoleculeTypeError):
            MoleculeType.parse("Part.contains[2].Component", cad_schema)

    def test_str_round_trip(self, bom_schema):
        mtype = MoleculeType.parse("Part.part_of[3].Part", bom_schema)
        assert "[3]" in str(mtype.edges[0])


class TestConstruction:
    def test_depth_one_reaches_direct_children(self, assembly):
        ref, names = assembly
        mtype = MoleculeType.parse("Part.part_of[1].Part", ref.schema)
        molecule = ref.builder.build_at(names["bike"], mtype, 1)
        assert molecule_names(molecule) == ["bike", "frame"]

    def test_depth_two(self, assembly):
        ref, names = assembly
        mtype = MoleculeType.parse("Part.part_of[2].Part", ref.schema)
        molecule = ref.builder.build_at(names["bike"], mtype, 1)
        assert molecule_names(molecule) == ["bike", "frame", "joint",
                                            "tube"]

    def test_depth_covers_whole_assembly(self, assembly):
        ref, names = assembly
        mtype = MoleculeType.parse("Part.part_of[5].Part", ref.schema)
        molecule = ref.builder.build_at(names["bike"], mtype, 1)
        assert molecule_names(molecule) == ["bike", "frame", "joint",
                                            "tube", "weld"]

    def test_recursion_respects_time(self, assembly):
        ref, names = assembly
        ref.unlink("part_of", names["frame"], names["tube"], valid_from=10)
        mtype = MoleculeType.parse("Part.part_of[5].Part", ref.schema)
        late = ref.builder.build_at(names["bike"], mtype, 11)
        assert molecule_names(late) == ["bike", "frame", "joint"]

    def test_data_cycle_terminates(self, bom_schema):
        """a -> b -> a in the data: expansion stops at the revisit."""
        ref = ReferenceDatabase(bom_schema)
        a = ref.insert("Part", {"name": "a"}, valid_from=0)
        b = ref.insert("Part", {"name": "b"}, valid_from=0)
        ref.link("part_of", a, b, valid_from=0)
        ref.link("part_of", b, a, valid_from=0)
        mtype = MoleculeType.parse("Part.part_of[10].Part", ref.schema)
        molecule = ref.builder.build_at(a, mtype, 1)
        assert molecule_names(molecule) == ["a", "b"]

    def test_reverse_recursion(self, assembly):
        """Where-used: from the weld up to the bike."""
        ref, names = assembly
        mtype = MoleculeType("Part", [
            __import__("repro").MoleculeEdge("Part", "part_of", "Part",
                                             forward=False, max_depth=5)])
        mtype.validate(ref.schema)
        molecule = ref.builder.build_at(names["weld"], mtype, 1)
        assert molecule_names(molecule) == ["bike", "frame", "tube",
                                            "weld"]


class TestEngineAndMql:
    def test_recursive_molecule_on_engine(self, tmp_path, bom_schema):
        db = TemporalDatabase.create(str(tmp_path / "rec"), bom_schema)
        with db.transaction() as txn:
            bike = txn.insert("Part", {"name": "bike"}, valid_from=0)
            frame = txn.insert("Part", {"name": "frame"}, valid_from=0)
            tube = txn.insert("Part", {"name": "tube"}, valid_from=0)
            txn.link("part_of", bike, frame, valid_from=0)
            txn.link("part_of", frame, tube, valid_from=0)
        molecule = db.molecule_at(bike, "Part.part_of[4].Part", 1)
        assert molecule_names(molecule) == ["bike", "frame", "tube"]
        db.close()

    def test_recursive_molecule_in_mql(self, tmp_path, bom_schema):
        db = TemporalDatabase.create(str(tmp_path / "recq"), bom_schema)
        with db.transaction() as txn:
            bike = txn.insert("Part", {"name": "bike"}, valid_from=0)
            frame = txn.insert("Part", {"name": "frame"}, valid_from=0)
            txn.link("part_of", bike, frame, valid_from=0)
        result = db.query(
            "SELECT ALL FROM Part.part_of[3].Part VALID AT 1")
        by_root = {entry.root_id: entry.molecule.atom_count()
                   for entry in result}
        assert by_root[bike] == 2
        assert by_root[frame] == 1
        # Aggregates see the transitive closure:
        result = db.query(
            "SELECT COUNT(Part) FROM Part.part_of[3].Part "
            "WHERE Part.name = 'bike' VALID AT 1")
        counts = [row["COUNT(Part)"] for row in result.rows()]
        assert 2 in counts
        db.close()

    def test_mql_bad_bound_rejected(self, tmp_path, bom_schema):
        db = TemporalDatabase.create(str(tmp_path / "recb"), bom_schema)
        with pytest.raises(ParseError):
            db.query("SELECT ALL FROM Part.part_of[x].Part VALID AT 1")
        db.close()

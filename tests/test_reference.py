"""Tests for the in-memory reference oracle itself."""

import pytest

from repro.errors import TemporalUpdateError, UnknownAtomError
from repro.temporal import Interval
from repro.testing import ReferenceDatabase


@pytest.fixture
def ref(cad_schema):
    return ReferenceDatabase(cad_schema)


class TestBasics:
    def test_insert_and_read(self, ref):
        part = ref.insert("Part", {"name": "x"}, valid_from=0)
        assert ref.version_at(part, 5).values["name"] == "x"
        assert ref.atom_type_name(part) == "Part"

    def test_atom_ids_assigned_densely(self, ref):
        a = ref.insert("Part", {"name": "a"}, valid_from=0)
        b = ref.insert("Part", {"name": "b"}, valid_from=0)
        assert b == a + 1

    def test_explicit_atom_id(self, ref):
        ref.insert("Part", {"name": "a"}, valid_from=0, atom_id=50)
        fresh = ref.insert("Part", {"name": "b"}, valid_from=0)
        assert fresh == 51

    def test_atoms_of_type(self, ref):
        part = ref.insert("Part", {"name": "a"}, valid_from=0)
        ref.insert("Component", {"cname": "c"}, valid_from=0)
        assert ref.atoms_of_type("Part") == [part]

    def test_unknown_atom(self, ref):
        with pytest.raises(UnknownAtomError):
            ref.update(9, {"name": "x"}, valid_from=0)
        assert ref.version_at(9, 0) is None

    def test_ticks_advance(self, ref):
        ref.insert("Part", {"name": "a"}, valid_from=0)
        before = ref.now
        ref.insert("Part", {"name": "b"}, valid_from=0)
        assert ref.now == before + 1


class TestSemantics:
    def test_self_check_runs(self, ref):
        """The oracle verifies the invariant after every mutation, so a
        legal program never trips it."""
        part = ref.insert("Part", {"name": "x"}, valid_from=0)
        ref.update(part, {"cost": 1.0}, valid_from=10)
        ref.correct(part, 0, 5, {"cost": 0.5})
        ref.delete(part, valid_from=50)

    def test_insert_overlap_rejected(self, ref):
        part = ref.insert("Part", {"name": "x"}, valid_from=0)
        with pytest.raises(TemporalUpdateError):
            ref.insert("Part", {"name": "y"}, valid_from=5, atom_id=part)

    def test_type_conflict_rejected(self, ref):
        part = ref.insert("Part", {"name": "x"}, valid_from=0, valid_to=5)
        with pytest.raises(TemporalUpdateError):
            ref.insert("Component", {"cname": "c"}, valid_from=10,
                       atom_id=part)

    def test_molecule_queries(self, ref):
        part = ref.insert("Part", {"name": "p"}, valid_from=0)
        hub = ref.insert("Component", {"cname": "h"}, valid_from=0)
        ref.link("contains", part, hub, valid_from=5)
        assert ref.molecule_at(part, "Part.contains.Component",
                               2).atom_count() == 1
        assert ref.molecule_at(part, "Part.contains.Component",
                               7).atom_count() == 2
        states = ref.molecule_history(part, "Part.contains.Component",
                                      Interval(0, 10))
        assert [m.atom_count() for _, m in states] == [1, 2]

    def test_unlink_missing_rejected(self, ref):
        part = ref.insert("Part", {"name": "p"}, valid_from=0)
        hub = ref.insert("Component", {"cname": "h"}, valid_from=0)
        with pytest.raises(TemporalUpdateError):
            ref.unlink("contains", part, hub, valid_from=0)

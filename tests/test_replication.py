"""Replication integration: shipping, replay, routing, failure modes.

The load-bearing test is the differential one: a replica at
transaction-time watermark ``T`` must answer every ``AS OF T' <= T``
query *byte-identical* to the primary — replication adds a copy, never
semantics — across all three version-store strategies and while a
writer keeps committing on the primary.  Around it: WAL_STREAM batch
shape, read-only write rejection, LSN-watermarked pool routing with
quarantine fallback, the retention guard end to end, crash-restart
resume, and the epoch fence against LSN reuse.
"""

from __future__ import annotations

import shutil
import threading
import time
from contextlib import contextmanager

import pytest

from repro import DatabaseConfig, TemporalDatabase
from repro.errors import RemoteError, ReplicationError
from repro.replication import ReplicaApplier, routing_bound
from repro.server import ClientPool, DatabaseClient, DatabaseServer
from repro.server.protocol import encode_payload


def wait_until(predicate, timeout=10.0, interval=0.02, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


class Cluster:
    """One primary server plus N replica servers, all in-process."""

    def __init__(self, tmp_path, schema, replicas=1, strategy=None,
                 start_appliers=True):
        config = DatabaseConfig(buffer_pages=64)
        if strategy is not None:
            config.strategy = strategy
        primary_path = str(tmp_path / "primary")
        seed = TemporalDatabase.create(primary_path, schema, config)
        seed.close()  # clean shutdown: the copies below are valid clones
        self.replica_paths = []
        for index in range(replicas):
            path = str(tmp_path / f"replica{index}")
            shutil.copytree(primary_path, path)
            self.replica_paths.append(path)

        self.pdb = TemporalDatabase.open(primary_path)
        self.primary = DatabaseServer(self.pdb)
        self.primary.start()
        self.rdbs, self.appliers, self.rservers = [], [], []
        for index, path in enumerate(self.replica_paths):
            rdb = TemporalDatabase.open(path)
            applier = ReplicaApplier(rdb, self.primary.host,
                                     self.primary.port,
                                     replica_id=f"replica-{index}",
                                     wait_ms=100,
                                     checkpoint_interval=0.2)
            rserver = DatabaseServer(rdb, replication=applier)
            rserver.start()
            if start_appliers:
                applier.start()
            self.rdbs.append(rdb)
            self.appliers.append(applier)
            self.rservers.append(rserver)

    def primary_client(self, **kwargs):
        return DatabaseClient(self.primary.host, self.primary.port,
                              **kwargs)

    def replica_client(self, index=0, **kwargs):
        server = self.rservers[index]
        return DatabaseClient(server.host, server.port, **kwargs)

    def wait_caught_up(self, timeout=10.0):
        head = self.pdb._wal.shippable_lsn

        def caught_up():
            return all(applier.applied_lsn >= head
                       for applier in self.appliers)
        wait_until(caught_up, timeout=timeout,
                   message=f"replicas to reach lsn {head}")

    def close(self):
        for applier in self.appliers:
            applier.stop()
        for server in self.rservers:
            server.shutdown()
        for rdb in self.rdbs:
            try:
                rdb.close()
            except Exception:
                pass
        self.primary.shutdown()
        try:
            self.pdb.close()
        except Exception:
            pass


@contextmanager
def cluster(tmp_path, schema, **kwargs):
    c = Cluster(tmp_path, schema, **kwargs)
    try:
        yield c
    finally:
        c.close()


def write_parts(client, start, count):
    """Serial transactions, one insert each; returns inserted atom ids."""
    ids = []
    for index in range(start, start + count):
        with client.transaction() as txn:
            ids.append(txn.insert("Part", {"name": f"part{index}",
                                           "cost": float(index)},
                                  valid_from=index))
    return ids


def assert_identical(pclient, rclient, text):
    primary_body = pclient.query(text)
    replica_body = rclient.query(text)
    assert encode_payload(primary_body) == encode_payload(replica_body), \
        f"replica diverged on {text!r}"


class TestWalStream:
    def test_batch_matches_primary_log(self, tmp_path, cad_schema):
        with cluster(tmp_path, cad_schema, replicas=0) as c:
            with c.primary_client() as client:
                write_parts(client, 0, 3)
                body = client.wal_stream(from_lsn=1, max_records=100)
            expected = [[r.lsn, r.type.value, r.txn_id, r.payload]
                        for r in c.pdb._wal.read_all()]
            assert body["records"] == expected
            assert body["head"] == expected[-1][0]
            assert body["caught_up"] is True
            assert body["next_from"] == expected[-1][0] + 1

    def test_caught_up_poll_returns_empty(self, tmp_path, cad_schema):
        with cluster(tmp_path, cad_schema, replicas=0) as c:
            with c.primary_client() as client:
                write_parts(client, 0, 1)
                head = c.pdb._wal.shippable_lsn
                started = time.monotonic()
                body = client.wal_stream(from_lsn=head + 1, wait_ms=100)
                assert time.monotonic() - started < 5.0
            assert body["records"] == []
            assert body["caught_up"] is True  # nothing newer exists
            assert body["next_from"] == head + 1

    def test_hello_advertises_role(self, tmp_path, cad_schema):
        with cluster(tmp_path, cad_schema, replicas=1) as c:
            with c.primary_client() as pc:
                assert pc.session["role"] == "primary"
            with c.replica_client() as rc:
                assert rc.session["role"] == "replica"
                block = rc.session["replication"]
                assert block["primary"] == (f"{c.primary.host}:"
                                            f"{c.primary.port}")

    def test_truncated_resume_point_is_an_error(self, tmp_path,
                                                cad_schema):
        with cluster(tmp_path, cad_schema, replicas=0) as c:
            with c.primary_client() as client:
                write_parts(client, 0, 2)
                c.pdb.checkpoint()
                assert c.pdb._wal.truncate()
                write_parts(client, 2, 1)
                with pytest.raises(RemoteError) as excinfo:
                    client.wal_stream(from_lsn=1, max_records=10)
            assert excinfo.value.remote_type == "WALError"
            assert not excinfo.value.transient


class TestReplicaApplies:
    def test_replica_catches_up_and_serves(self, tmp_path, cad_schema):
        with cluster(tmp_path, cad_schema, replicas=1) as c:
            with c.primary_client() as pc:
                write_parts(pc, 0, 5)
            c.wait_caught_up()
            status = c.appliers[0].status()
            assert status["connected"]
            assert status["replayed_lsn"] == c.pdb._wal.shippable_lsn
            watermark = status["replayed_tt"]
            with c.primary_client() as pc, c.replica_client() as rc:
                for tt in range(watermark + 1):
                    assert_identical(
                        pc, rc,
                        f"SELECT ALL FROM Part VALID AT 2 AS OF {tt}")
                    assert_identical(
                        pc, rc,
                        "SELECT ALL FROM Part VALID HISTORY "
                        f"AS OF {tt}")

    def test_differential_under_concurrent_writer(self, tmp_path,
                                                  cad_schema, strategy):
        """A replica answers AS OF T <= watermark byte-identical to the
        primary while the primary keeps committing — per strategy."""
        with cluster(tmp_path, cad_schema, replicas=1,
                     strategy=strategy) as c:
            with c.primary_client() as pc:
                write_parts(pc, 0, 4)
            c.wait_caught_up()
            stop = threading.Event()
            failures = []

            def writer():
                try:
                    with c.primary_client() as wc:
                        index = 100
                        while not stop.is_set():
                            with wc.transaction() as txn:
                                part = txn.insert(
                                    "Part",
                                    {"name": f"w{index}",
                                     "cost": float(index)},
                                    valid_from=index)
                                txn.update(part, {"cost": float(index) + 0.5},
                                           valid_from=index + 1)
                            index += 1
                except Exception as exc:  # surfaced by the main thread
                    failures.append(exc)

            thread = threading.Thread(target=writer)
            thread.start()
            try:
                with c.primary_client() as pc, c.replica_client() as rc:
                    checked = 0
                    deadline = time.monotonic() + 8.0
                    while checked < 25 and time.monotonic() < deadline:
                        watermark = c.appliers[0].replayed_tt
                        if watermark < 1:
                            time.sleep(0.01)
                            continue
                        for text in (
                                "SELECT ALL FROM Part VALID AT 2 "
                                f"AS OF {watermark}",
                                "SELECT ALL FROM Part VALID HISTORY "
                                f"AS OF {watermark}",
                                "SELECT Part.name, Part.cost FROM Part "
                                f"VALID AT 101 AS OF {watermark}"):
                            assert_identical(pc, rc, text)
                        checked += 1
                    assert checked >= 5
            finally:
                stop.set()
                thread.join(10)
            assert not failures

    def test_replay_is_idempotent_across_rewind(self, tmp_path,
                                                cad_schema):
        """Re-requesting an overlapping range (reconnect) applies
        nothing twice."""
        with cluster(tmp_path, cad_schema, replicas=1) as c:
            with c.primary_client() as pc:
                write_parts(pc, 0, 3)
            c.wait_caught_up()
            applier = c.appliers[0]
            with c.primary_client() as pc, c.replica_client() as rc:
                before = rc.query("SELECT ALL FROM Part VALID HISTORY")
                # Simulate a reconnect that rewinds the cursor: re-feed
                # the whole log through the applier's ingest path.
                with DatabaseClient(c.primary.host, c.primary.port) as dc:
                    body = dc.wal_stream(from_lsn=1, max_records=1000)
                applier._ingest(body)
                after = rc.query("SELECT ALL FROM Part VALID HISTORY")
                assert encode_payload(before) == encode_payload(after)
                assert_identical(pc, rc,
                                 "SELECT ALL FROM Part VALID HISTORY")


class TestReadOnlyReplica:
    def test_mutate_is_rejected_with_primary_address(self, tmp_path,
                                                     cad_schema):
        with cluster(tmp_path, cad_schema, replicas=1) as c:
            with c.replica_client() as rc:
                with pytest.raises(RemoteError) as excinfo:
                    rc.mutate("insert", type="Part",
                              values={"name": "nope"}, valid_from=0)
            error = excinfo.value
            assert error.remote_type == "ReadOnlyReplicaError"
            assert not error.transient
            assert f"{c.primary.host}:{c.primary.port}" in \
                error.remote_message

    def test_begin_is_rejected(self, tmp_path, cad_schema):
        with cluster(tmp_path, cad_schema, replicas=1) as c:
            with c.replica_client() as rc:
                with pytest.raises(RemoteError) as excinfo:
                    rc.begin()
            assert excinfo.value.remote_type == "ReadOnlyReplicaError"

    def test_reads_still_served(self, tmp_path, cad_schema):
        with cluster(tmp_path, cad_schema, replicas=1) as c:
            with c.primary_client() as pc:
                write_parts(pc, 0, 2)
            c.wait_caught_up()
            with c.replica_client() as rc:
                body = rc.query("SELECT ALL FROM Part VALID AT 1")
                assert len(body["entries"]) == 2


class TestRouting:
    def test_time_bounded_reads_route_to_replica(self, tmp_path,
                                                 cad_schema):
        with cluster(tmp_path, cad_schema, replicas=1) as c:
            with c.primary_client() as pc:
                write_parts(pc, 0, 3)
            c.wait_caught_up()
            watermark = c.appliers[0].replayed_tt
            server = c.rservers[0]
            pool = ClientPool(
                c.primary.host, c.primary.port, size=2,
                replicas=[f"{server.host}:{server.port}"])
            with pool:
                before = c.rdbs[0].metrics.value("server.requests")
                body = pool.query("SELECT ALL FROM Part VALID AT 1 "
                                  f"AS OF {watermark}")
                assert len(body["entries"]) == 2
                after = c.rdbs[0].metrics.value("server.requests")
                assert after > before  # the replica served it
                (snapshot,) = pool.replica_status()
                assert snapshot["watermark_tt"] >= watermark
                assert not snapshot["quarantined"]

    def test_current_knowledge_reads_pin_to_primary(self, tmp_path,
                                                    cad_schema):
        with cluster(tmp_path, cad_schema, replicas=1) as c:
            with c.primary_client() as pc:
                write_parts(pc, 0, 2)
            c.wait_caught_up()
            watermark = c.appliers[0].replayed_tt
            server = c.rservers[0]
            pool = ClientPool(
                c.primary.host, c.primary.port, size=2,
                replicas=[f"{server.host}:{server.port}"])
            with pool:
                # Prime the watermark cache with one routed read.
                pool.query(f"SELECT ALL FROM Part VALID AT 1 "
                           f"AS OF {watermark}")
                before = c.rdbs[0].metrics.value("server.requests")
                pool.query("SELECT ALL FROM Part VALID AT 1")
                pool.query("SELECT ALL FROM Part VALID AT 1 AS OF FOREVER")
                after = c.rdbs[0].metrics.value("server.requests")
                assert after == before  # replica never touched

    def test_ahead_of_watermark_pins_to_primary(self, tmp_path,
                                                cad_schema):
        with cluster(tmp_path, cad_schema, replicas=1,
                     start_appliers=False) as c:
            with c.primary_client() as pc:
                write_parts(pc, 0, 2)
            # The applier never ran: the replica's watermark stays at
            # its bootstrap value, far below the primary's clock.
            bound = c.pdb._clock.now() + 100
            server = c.rservers[0]
            pool = ClientPool(
                c.primary.host, c.primary.port, size=2,
                replicas=[f"{server.host}:{server.port}"])
            with pool:
                body = pool.query("SELECT ALL FROM Part VALID AT 1 "
                                  f"AS OF {bound}")
                assert len(body["entries"]) == 2  # primary answered

    def test_dead_replica_quarantined_with_fallback(self, tmp_path,
                                                    cad_schema):
        with cluster(tmp_path, cad_schema, replicas=1) as c:
            with c.primary_client() as pc:
                write_parts(pc, 0, 3)
            c.wait_caught_up()
            watermark = c.appliers[0].replayed_tt
            server = c.rservers[0]
            pool = ClientPool(
                c.primary.host, c.primary.port, size=2,
                replicas=[f"{server.host}:{server.port}"])
            with pool:
                text = (f"SELECT ALL FROM Part VALID AT 1 "
                        f"AS OF {watermark}")
                pool.query(text)  # primes the watermark cache
                c.appliers[0].stop()
                server.shutdown()
                body = pool.query(text)  # falls back to the primary
                assert len(body["entries"]) == 2
                (snapshot,) = pool.replica_status()
                assert snapshot["quarantined"]
                assert snapshot["failures"] >= 1
                # Still healthy for repeated queries while quarantined.
                assert len(pool.query(text)["entries"]) == 2


class TestRetention:
    def test_guard_holds_then_releases(self, tmp_path, cad_schema):
        with cluster(tmp_path, cad_schema, replicas=1) as c:
            with c.primary_client() as pc:
                write_parts(pc, 0, 2)
            c.wait_caught_up()
            applier = c.appliers[0]
            wait_until(lambda: (c.pdb._wal.min_acked_lsn() or 0)
                       >= applier.applied_lsn,
                       message="ack to reach the applied lsn")
            # Stall the replica, then keep writing: the primary must
            # refuse to truncate past the stalled ack.
            applier.stop()
            with c.primary_client() as pc:
                write_parts(pc, 2, 3)
            c.pdb.checkpoint()
            assert c.pdb._wal.truncate() is False
            assert c.pdb.metrics.gauge(
                "wal.retention_held_bytes").value > 0
            # Resume: a fresh applier re-subscribes, catches up, and its
            # checkpoint-driven acks release the hold.
            applier2 = ReplicaApplier(c.rdbs[0], c.primary.host,
                                      c.primary.port,
                                      replica_id="replica-0",
                                      wait_ms=100,
                                      checkpoint_interval=0.05)
            c.appliers[0] = applier2
            applier2.start()
            head = c.pdb._wal.shippable_lsn
            wait_until(lambda: (c.pdb._wal.min_acked_lsn() or 0) >= head,
                       message="resumed replica to ack the head")
            assert c.pdb._wal.truncate() is True
            assert c.pdb.metrics.gauge(
                "wal.retention_held_bytes").value == 0


class TestReplicaRestart:
    def test_crashed_replica_resumes_and_matches(self, tmp_path,
                                                 cad_schema):
        with cluster(tmp_path, cad_schema, replicas=1) as c:
            with c.primary_client() as pc:
                write_parts(pc, 0, 4)
            c.wait_caught_up()
            wait_until(lambda: c.rdbs[0]._catalog.applied_lsn > 0,
                       message="replica checkpoint")
            applier = c.appliers[0]
            applier.stop()
            c.rservers[0].shutdown()
            # Crash-style abandonment: flush OS buffers, never close.
            rdb = c.rdbs[0]
            rdb._wal._file.flush()
            rdb._disk._file.flush()
            with c.primary_client() as pc:
                write_parts(pc, 4, 3)

            rdb2 = TemporalDatabase.open(c.replica_paths[0])
            applier2 = ReplicaApplier(rdb2, c.primary.host,
                                      c.primary.port, wait_ms=100,
                                      checkpoint_interval=0.2)
            # The persisted identity survived the crash, keeping the
            # primary-side subscription stable.
            assert applier2.replica_id == "replica-0"
            rserver2 = DatabaseServer(rdb2, replication=applier2)
            rserver2.start()
            c.rdbs[0], c.appliers[0], c.rservers[0] = (rdb2, applier2,
                                                       rserver2)
            applier2.start()
            c.wait_caught_up()
            with c.primary_client() as pc, c.replica_client() as rc:
                watermark = applier2.replayed_tt
                for tt in (1, watermark // 2, watermark):
                    assert_identical(
                        pc, rc,
                        f"SELECT ALL FROM Part VALID HISTORY AS OF {tt}")

    def test_epoch_mismatch_is_fatal(self, tmp_path, cad_schema):
        with cluster(tmp_path, cad_schema, replicas=1) as c:
            applier = c.appliers[0]
            with pytest.raises(ReplicationError) as excinfo:
                applier._ingest({"records": [], "head": 0,
                                 "epoch": applier._expected_epoch + 1})
            assert "re-bootstrap" in str(excinfo.value)


class TestRoutingBound:
    @pytest.mark.parametrize("text,expected", [
        ("SELECT ALL FROM Part VALID AT 5 AS OF 17", 17),
        ("SELECT ALL FROM Part AS OF 0", 0),
        ("SELECT ALL FROM Part VALID AT 5", None),
        ("SELECT ALL FROM Part VALID AT 5 AS OF FOREVER", None),
        ("EXPLAIN ANALYZE SELECT ALL FROM Part AS OF 3", None),
        ("not even mql", None),
    ])
    def test_bounds(self, text, expected):
        assert routing_bound(text) == expected


# -- cascading chains --------------------------------------------------------


@contextmanager
def chain(tmp_path, schema):
    """A two-hop chain: primary -> hop A -> hop B, all in-process.

    Hop A replays the primary's WAL into its own log verbatim
    (``append_shipped`` preserves the LSN space), so its server can in
    turn serve ``WAL_STREAM`` to hop B — no primary-specific state is
    involved in being a shipping source.
    """
    config = DatabaseConfig(buffer_pages=64)
    primary_path = str(tmp_path / "primary")
    seed = TemporalDatabase.create(primary_path, schema, config)
    seed.close()
    for name in ("hop-a", "hop-b"):
        shutil.copytree(primary_path, str(tmp_path / name))
    pdb = TemporalDatabase.open(primary_path)
    primary = DatabaseServer(pdb)
    primary.start()
    adb = TemporalDatabase.open(str(tmp_path / "hop-a"))
    a_applier = ReplicaApplier(adb, primary.host, primary.port,
                               replica_id="hop-a", wait_ms=100,
                               checkpoint_interval=0.2)
    a_server = DatabaseServer(adb, replication=a_applier)
    a_server.start()
    a_applier.start()
    bdb = TemporalDatabase.open(str(tmp_path / "hop-b"))
    b_applier = ReplicaApplier(bdb, a_server.host, a_server.port,
                               replica_id="hop-b", wait_ms=100,
                               checkpoint_interval=0.2)
    b_server = DatabaseServer(bdb, replication=b_applier)
    b_server.start()
    b_applier.start()
    parts = {"pdb": pdb, "primary": primary,
             "adb": adb, "a_applier": a_applier, "a_server": a_server,
             "bdb": bdb, "b_applier": b_applier, "b_server": b_server}
    try:
        yield parts
    finally:
        for applier in (b_applier, a_applier):
            applier.stop()
        for server in (b_server, a_server, primary):
            server.shutdown()
        for db in (bdb, adb, pdb):
            try:
                db.close()
            except Exception:
                pass


class TestCascading:
    def test_two_hops_converge_and_serve_identical_reads(self, tmp_path,
                                                         cad_schema):
        with chain(tmp_path, cad_schema) as c:
            with DatabaseClient(c["primary"].host,
                                c["primary"].port) as pclient:
                write_parts(pclient, 0, 6)
                head = c["pdb"]._wal.shippable_lsn
                wait_until(lambda: c["b_applier"].applied_lsn >= head,
                           message="hop B to replay the chain")
                with DatabaseClient(c["b_server"].host,
                                    c["b_server"].port) as bclient:
                    assert_identical(pclient, bclient,
                                     "SELECT ALL FROM Part VALID AT 100")
                    assert_identical(
                        pclient, bclient,
                        "SELECT Part.name FROM Part "
                        "WHERE Part.cost >= 3 VALID AT 100")

    def test_watermarks_propagate_down_the_chain(self, tmp_path,
                                                 cad_schema):
        with chain(tmp_path, cad_schema) as c:
            with DatabaseClient(c["primary"].host,
                                c["primary"].port) as pclient:
                write_parts(pclient, 0, 4)
            head = c["pdb"]._wal.shippable_lsn
            wait_until(lambda: c["b_applier"].applied_lsn >= head,
                       message="hop B to reach the primary head")
            # Every hop reports the same replayed position...
            assert c["a_applier"].status()["replayed_lsn"] >= head
            assert c["b_applier"].status()["replayed_lsn"] >= head
            # ...the middle hop carries its downstream in the *replica*
            # registry (B holds retention on A exactly as A does on the
            # primary)...
            wait_until(lambda: "hop-b" in c["adb"]._wal.subscribers(),
                       message="hop B to register with hop A")
            assert "hop-a" in c["pdb"]._wal.subscribers()
            # ...and the durable (checkpointed) watermark follows within
            # a checkpoint interval, propagating the ack upstream.
            wait_until(
                lambda: int(c["adb"]._wal.subscribers()
                            .get("hop-b", {}).get("acked", 0)) >= head,
                message="hop B's ack to reach hop A")

    def test_sigkilled_middle_hop_recovers_and_chain_heals(
            self, tmp_path, cad_schema):
        """Real SIGKILL against the middle hop, run as a subprocess
        (``serve --replica-of``): the downstream applier must ride out
        the outage and converge once the hop restarts on its WAL."""
        import os
        import signal
        import subprocess
        import sys

        config = DatabaseConfig(buffer_pages=64)
        primary_path = str(tmp_path / "primary")
        seed = TemporalDatabase.create(primary_path, cad_schema, config)
        seed.close()
        for name in ("hop-a", "hop-b"):
            shutil.copytree(primary_path, str(tmp_path / name))
        pdb = TemporalDatabase.open(primary_path)
        primary = DatabaseServer(pdb)
        primary.start()

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(tmp_path.parent)] + env.get("PYTHONPATH", "").split(
                os.pathsep))
        src_dir = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src_dir)

        def launch(port):
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "serve",
                 "--path", str(tmp_path / "hop-a"),
                 "--host", "127.0.0.1", "--port", str(port),
                 "--replica-of", f"{primary.host}:{primary.port}",
                 "--replica-id", "hop-a",
                 "--replica-checkpoint-interval", "0.2"],
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                env=env, text=True)
            while True:
                line = proc.stdout.readline()
                assert line, "middle hop died during startup"
                if line.startswith("serving "):
                    address = line.split(" on ", 1)[1].split()[0]
                    return proc, int(address.rsplit(":", 1)[1])

        bdb = b_applier = None
        proc, a_port = launch(0)
        try:
            bdb = TemporalDatabase.open(str(tmp_path / "hop-b"))
            b_applier = ReplicaApplier(bdb, "127.0.0.1", a_port,
                                       replica_id="hop-b", wait_ms=100,
                                       checkpoint_interval=0.2)
            b_applier.start()
            with DatabaseClient(primary.host, primary.port) as pclient:
                write_parts(pclient, 0, 4)
                head = pdb._wal.shippable_lsn
                wait_until(lambda: b_applier.applied_lsn >= head,
                           message="hop B to replay through hop A")

                proc.send_signal(signal.SIGKILL)
                proc.wait(timeout=10)
                # The chain is severed; the primary keeps committing.
                write_parts(pclient, 4, 4)
                head = pdb._wal.shippable_lsn

                proc, _ = launch(a_port)  # same data dir, same port
                wait_until(lambda: b_applier.applied_lsn >= head,
                           timeout=30.0,
                           message="hop B to converge after the restart")
            assert [e.row["Part.name"] for e in
                    bdb.query("SELECT Part.name FROM Part "
                              "VALID AT 100").entries] == \
                [e.row["Part.name"] for e in
                 pdb.query("SELECT Part.name FROM Part "
                           "VALID AT 100").entries]
            assert b_applier.reconnects >= 1
        finally:
            if proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
            if b_applier is not None:
                b_applier.stop()
            if bdb is not None:
                try:
                    bdb.close()
                except Exception:
                    pass
            primary.shutdown()
            try:
                pdb.close()
            except Exception:
                pass

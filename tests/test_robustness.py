"""Robustness tests: corruption, odd configurations, contention, unicode."""

import json
import threading

import pytest

from repro import (
    DatabaseConfig,
    ReplacementPolicy,
    TemporalDatabase,
    VersionStrategy,
)
from repro.errors import (
    CatalogError,
    LockTimeoutError,
    SerializationConflictError,
)


class TestCatalogCorruption:
    def test_truncated_catalog_rejected(self, tmp_path, cad_schema):
        path = str(tmp_path / "db")
        TemporalDatabase.create(path, cad_schema).close()
        catalog_path = tmp_path / "db" / "catalog.json"
        catalog_path.write_text(catalog_path.read_text()[:40])
        with pytest.raises(CatalogError):
            TemporalDatabase.open(path)

    def test_missing_catalog_rejected(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(CatalogError):
            TemporalDatabase.open(str(tmp_path / "empty"))

    def test_wrong_format_version_rejected(self, tmp_path, cad_schema):
        path = str(tmp_path / "db")
        TemporalDatabase.create(path, cad_schema).close()
        catalog_path = tmp_path / "db" / "catalog.json"
        document = json.loads(catalog_path.read_text())
        document["format_version"] = 999
        catalog_path.write_text(json.dumps(document))
        with pytest.raises(CatalogError):
            TemporalDatabase.open(path)


class TestConfigurations:
    @pytest.mark.parametrize("page_size", [512, 1024, 16384])
    def test_page_sizes_work_end_to_end(self, tmp_path, cad_schema,
                                        page_size):
        path = str(tmp_path / f"ps{page_size}")
        db = TemporalDatabase.create(
            path, cad_schema, DatabaseConfig(page_size=page_size))
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "x" * 200, "cost": 1.0},
                              valid_from=0)
        for round_number in range(20):
            with db.transaction() as txn:
                txn.update(part, {"cost": float(round_number)},
                           valid_from=round_number + 1)
        db.close()
        reopened = TemporalDatabase.open(path)
        assert reopened.version_at(part, 10).values["cost"] == 9.0
        reopened.close()

    def test_tiny_buffer_pool_still_correct(self, tmp_path, cad_schema):
        db = TemporalDatabase.create(
            str(tmp_path / "tiny"), cad_schema,
            DatabaseConfig(buffer_pages=4,
                           replacement=ReplacementPolicy.CLOCK))
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "p"}, valid_from=0)
            for index in range(12):
                comp = txn.insert("Component", {"cname": f"c{index}"},
                                  valid_from=0)
                txn.link("contains", part, comp, valid_from=0)
        molecule = db.molecule_at(part, "Part.contains.Component", 1)
        assert molecule.atom_count() == 13
        assert db.buffer.stats.evictions > 0  # the pool actually thrashed
        db.close()

    def test_strategy_fixed_at_creation(self, tmp_path, cad_schema):
        path = str(tmp_path / "fixed")
        TemporalDatabase.create(
            path, cad_schema,
            DatabaseConfig(strategy=VersionStrategy.CHAINED)).close()
        # Opening with another strategy in the config is overridden by
        # the catalog — physical layout cannot change on open.
        reopened = TemporalDatabase.open(
            path, DatabaseConfig(strategy=VersionStrategy.CLUSTERED))
        assert reopened.config.strategy is VersionStrategy.CHAINED
        reopened.close()


class TestUnicode:
    def test_unicode_values_survive_storage_and_mql(self, db):
        name = "Rad-Ø « 車輪 » 🚲"
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": name}, valid_from=0)
        assert db.version_at(part, 1).values["name"] == name
        result = db.query(
            f"SELECT ALL FROM Part WHERE Part.name = '{name}' VALID AT 1")
        assert result.root_ids() == [part]

    def test_unicode_with_index(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "łøžká"}, valid_from=0)
        db.create_attribute_index("Part", "name")
        result = db.query(
            "SELECT ALL FROM Part WHERE Part.name = 'łøžká' VALID AT 1")
        assert result.root_ids() == [part]


class TestContention:
    def test_conflicting_writers_serialize(self, tmp_path, cad_schema):
        db = TemporalDatabase.create(str(tmp_path / "conflict"),
                                     cad_schema,
                                     DatabaseConfig(lock_timeout=5.0))
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "hot", "cost": 0.0},
                              valid_from=0)
        errors = []
        retries = []

        def bump(round_offset):
            try:
                for index in range(10):
                    at = 1 + round_offset * 100 + index
                    while True:  # retry on serialization conflicts
                        try:
                            with db.transaction() as txn:
                                txn.update(part, {"cost": float(at)},
                                           valid_from=at)
                            break
                        except SerializationConflictError:
                            retries.append(at)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=bump, args=(offset,))
                   for offset in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        live = [v for v in db.history(part) if v.live]
        # 30 updates + the original insert produce 31 live states.
        assert len(live) == 31
        from repro.core import history as hist
        hist.check_history(db.history(part))
        db.close()

    def test_lock_timeout_surfaces(self, tmp_path, cad_schema):
        db = TemporalDatabase.create(str(tmp_path / "timeout"),
                                     cad_schema,
                                     DatabaseConfig(lock_timeout=0.1))
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "p"}, valid_from=0)
        holder = db.begin()
        holder.update(part, {"cost": 1.0}, valid_from=1)
        blocked = db.begin()
        with pytest.raises(LockTimeoutError):
            blocked.update(part, {"cost": 2.0}, valid_from=2)
        blocked.abort()
        holder.commit()
        assert db.version_at(part, 5).values["cost"] == 1.0
        db.close()


class TestLargeValues:
    def test_large_string_attribute_spans_pages(self, db):
        essay = "temporal " * 2000  # ~18 KB, far over one page
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": essay}, valid_from=0)
        assert db.version_at(part, 1).values["name"] == essay
        with db.transaction() as txn:
            txn.update(part, {"cost": 1.0}, valid_from=5)
        assert db.version_at(part, 6).values["name"] == essay

    def test_many_links_on_one_atom(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "hub"}, valid_from=0)
            for index in range(150):
                comp = txn.insert("Component", {"cname": f"c{index}"},
                                  valid_from=0)
                txn.link("contains", part, comp, valid_from=0)
        version = db.version_at(part, 1)
        assert len(version.targets("contains")) == 150
        molecule = db.molecule_at(part, "Part.contains.Component", 1)
        assert molecule.atom_count() == 151

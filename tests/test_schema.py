"""Tests for schema definition."""

import pytest

from repro import AtomType, Attribute, Cardinality, DataType, LinkType, Schema
from repro.errors import (
    DuplicateDefinitionError,
    SchemaError,
    TypeMismatchError,
    UnknownTypeError,
)


def make_schema():
    schema = Schema("test")
    schema.add_atom_type(AtomType("Part", [
        Attribute("name", DataType.STRING, required=True),
        Attribute("cost", DataType.FLOAT)]))
    schema.add_atom_type(AtomType("Component", [
        Attribute("weight", DataType.FLOAT)]))
    schema.add_link_type(LinkType("contains", "Part", "Component",
                                  Cardinality.ONE_TO_MANY))
    return schema


class TestAtomTypes:
    def test_type_ids_are_dense(self):
        schema = make_schema()
        assert schema.atom_type("Part").type_id == 0
        assert schema.atom_type("Component").type_id == 1

    def test_duplicate_type_rejected(self):
        schema = make_schema()
        with pytest.raises(DuplicateDefinitionError):
            schema.add_atom_type(AtomType("Part", []))

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(DuplicateDefinitionError):
            AtomType("X", [Attribute("a", DataType.INT),
                           Attribute("a", DataType.INT)])

    def test_unknown_type_lookup(self):
        with pytest.raises(UnknownTypeError):
            make_schema().atom_type("Mystery")

    def test_unknown_attribute_lookup(self):
        with pytest.raises(UnknownTypeError):
            make_schema().atom_type("Part").attribute("mystery")

    def test_bad_names_rejected(self):
        with pytest.raises(SchemaError):
            AtomType("9lives", [])
        with pytest.raises(SchemaError):
            Attribute("has space", DataType.INT)
        with pytest.raises(SchemaError):
            AtomType("", [])

    def test_underscored_names_accepted(self):
        AtomType("My_Type", [Attribute("attr_1", DataType.INT)])


class TestValueValidation:
    def test_full_values(self):
        part = make_schema().atom_type("Part")
        checked = part.validate_values({"name": "wheel", "cost": 3.5})
        assert checked == {"name": "wheel", "cost": 3.5}

    def test_missing_optional_filled_with_none(self):
        part = make_schema().atom_type("Part")
        assert part.validate_values({"name": "x"})["cost"] is None

    def test_missing_required_rejected(self):
        part = make_schema().atom_type("Part")
        with pytest.raises(TypeMismatchError):
            part.validate_values({"cost": 1.0})

    def test_partial_mode_allows_missing_required(self):
        part = make_schema().atom_type("Part")
        assert part.validate_values({"cost": 2.0}, partial=True) == {
            "cost": 2.0}

    def test_partial_mode_rejects_nulling_required(self):
        part = make_schema().atom_type("Part")
        with pytest.raises(TypeMismatchError):
            part.validate_values({"name": None}, partial=True)

    def test_unknown_attribute_rejected(self):
        part = make_schema().atom_type("Part")
        with pytest.raises(UnknownTypeError):
            part.validate_values({"name": "x", "mystery": 1})

    def test_int_widens_to_float(self):
        part = make_schema().atom_type("Part")
        assert part.validate_values({"name": "x", "cost": 3})["cost"] == 3.0


class TestLinkTypes:
    def test_link_endpoints_checked(self):
        schema = make_schema()
        with pytest.raises(UnknownTypeError):
            schema.add_link_type(LinkType("bad", "Part", "Mystery"))

    def test_duplicate_link_rejected(self):
        schema = make_schema()
        with pytest.raises(DuplicateDefinitionError):
            schema.add_link_type(LinkType("contains", "Part", "Component"))

    def test_links_touching(self):
        schema = make_schema()
        assert [l.name for l in schema.links_touching("Part")] == ["contains"]
        assert [l.name for l in schema.links_touching("Component")] == [
            "contains"]

    def test_links_between(self):
        schema = make_schema()
        assert [l.name for l in schema.links_between("Component",
                                                     "Part")] == ["contains"]
        assert schema.links_between("Part", "Part") == []

    def test_other_end(self):
        link = make_schema().link_type("contains")
        assert link.other_end("Part") == "Component"
        assert link.other_end("Component") == "Part"
        with pytest.raises(UnknownTypeError):
            link.other_end("Supplier")

    def test_cardinality_semantics(self):
        assert Cardinality.ONE_TO_MANY.source_may_have_many
        assert not Cardinality.ONE_TO_MANY.target_may_have_many
        assert not Cardinality.ONE_TO_ONE.source_may_have_many
        assert Cardinality.MANY_TO_MANY.target_may_have_many


class TestPersistence:
    def test_dict_round_trip(self):
        schema = make_schema()
        restored = Schema.from_dict(schema.to_dict())
        assert [t.name for t in restored.atom_types] == ["Part", "Component"]
        assert restored.atom_type("Part").type_id == 0
        part = restored.atom_type("Part")
        assert part.attribute("name").required
        assert part.attribute("cost").data_type is DataType.FLOAT
        link = restored.link_type("contains")
        assert link.cardinality is Cardinality.ONE_TO_MANY
        assert (link.source, link.target) == ("Part", "Component")

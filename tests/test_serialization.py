"""Tests for the binary row codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SerializationError
from repro.storage.serialization import (
    FieldSpec,
    FieldType,
    decode_row,
    decode_row_exact,
    encode_row,
)

FIELDS = [
    FieldSpec("id", FieldType.INT),
    FieldSpec("ratio", FieldType.FLOAT),
    FieldSpec("label", FieldType.STRING),
    FieldSpec("flag", FieldType.BOOL),
    FieldSpec("when", FieldType.TIME),
    FieldSpec("blob", FieldType.BYTES),
    FieldSpec("refs", FieldType.INT_LIST),
]


class TestRoundTrip:
    def test_full_row(self):
        values = {"id": 42, "ratio": 3.25, "label": "héllo",
                  "flag": True, "when": -7, "blob": b"\x00\xff",
                  "refs": [3, 1, 2]}
        decoded = decode_row_exact(FIELDS, encode_row(FIELDS, values))
        assert decoded == values

    def test_nulls(self):
        decoded = decode_row_exact(FIELDS, encode_row(FIELDS, {}))
        assert decoded == {spec.name: None for spec in FIELDS}

    def test_partial_row(self):
        decoded = decode_row_exact(FIELDS, encode_row(FIELDS, {"id": 1}))
        assert decoded["id"] == 1
        assert decoded["label"] is None

    def test_empty_string_and_list(self):
        values = {"label": "", "refs": []}
        decoded = decode_row_exact(FIELDS, encode_row(FIELDS, values))
        assert decoded["label"] == ""
        assert decoded["refs"] == []

    def test_unicode_string(self):
        values = {"label": "日本語 مرحبا 🚀"}
        decoded = decode_row_exact(FIELDS, encode_row(FIELDS, values))
        assert decoded["label"] == values["label"]

    def test_many_fields_bitmap_spans_bytes(self):
        fields = [FieldSpec(f"f{i}", FieldType.INT) for i in range(20)]
        values = {f"f{i}": i for i in range(0, 20, 3)}
        decoded = decode_row_exact(fields, encode_row(fields, values))
        for i in range(20):
            assert decoded[f"f{i}"] == (i if i % 3 == 0 else None)

    def test_multiple_rows_in_one_buffer(self):
        row1 = encode_row(FIELDS, {"id": 1})
        row2 = encode_row(FIELDS, {"id": 2, "label": "two"})
        buffer = row1 + row2
        first, offset = decode_row(FIELDS, buffer)
        second, end = decode_row(FIELDS, buffer, offset)
        assert first["id"] == 1 and second["id"] == 2
        assert second["label"] == "two"
        assert end == len(buffer)


class TestValidation:
    def test_unknown_field_rejected(self):
        with pytest.raises(SerializationError, match="unknown fields"):
            encode_row(FIELDS, {"mystery": 1})

    def test_type_mismatch_rejected(self):
        with pytest.raises(SerializationError):
            encode_row(FIELDS, {"id": "not an int"})

    def test_bool_is_not_int(self):
        with pytest.raises(SerializationError):
            encode_row(FIELDS, {"id": True})

    def test_int_accepted_for_float(self):
        decoded = decode_row_exact(FIELDS, encode_row(FIELDS, {"ratio": 2}))
        assert decoded["ratio"] == 2.0

    def test_string_field_rejects_bytes(self):
        with pytest.raises(SerializationError):
            encode_row(FIELDS, {"label": b"bytes"})

    def test_truncated_record_rejected(self):
        encoded = encode_row(FIELDS, {"id": 1, "label": "abc"})
        with pytest.raises(SerializationError):
            decode_row_exact(FIELDS, encoded[:-2])

    def test_trailing_garbage_rejected(self):
        encoded = encode_row(FIELDS, {"id": 1})
        with pytest.raises(SerializationError):
            decode_row_exact(FIELDS, encoded + b"JUNK")

    def test_empty_data_rejected(self):
        with pytest.raises(SerializationError):
            decode_row(FIELDS, b"")


row_values = st.fixed_dictionaries({}, optional={
    "id": st.integers(min_value=-(2**63), max_value=2**63 - 1),
    "ratio": st.floats(allow_nan=False, allow_infinity=False, width=64),
    "label": st.text(max_size=50),
    "flag": st.booleans(),
    "when": st.integers(min_value=-(2**62), max_value=2**62),
    "blob": st.binary(max_size=50),
    "refs": st.lists(st.integers(min_value=-(2**63), max_value=2**63 - 1),
                     max_size=10),
})


@given(row_values)
def test_round_trip_property(values):
    decoded = decode_row_exact(FIELDS, encode_row(FIELDS, values))
    for spec in FIELDS:
        expected = values.get(spec.name)
        if spec.name == "ratio" and expected is not None:
            assert decoded["ratio"] == float(expected)
        else:
            assert decoded[spec.name] == expected

"""Server integration: sessions, transactions, admission, shutdown.

The load-bearing test is the differential one: N concurrent network
clients must read results *byte-identical* to in-process execution —
the server adds transport, never semantics.  Around it: handshake
negotiation, wire transactions (commit/rollback/disconnect), load
shedding with structured transient errors, idle reaping, connection
caps, and graceful drain-then-checkpoint shutdown.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro import DatabaseConfig, TemporalDatabase
from repro.errors import ConnectionClosedError, HandshakeError, RemoteError
from repro.server import (
    AdmissionController,
    ClientPool,
    DatabaseClient,
    DatabaseServer,
)
from repro.server.protocol import (
    PROTOCOL_MAGIC,
    PROTOCOL_VERSION,
    Opcode,
    encode_payload,
    read_frame,
    result_to_payload,
    write_frame,
)


@pytest.fixture
def sdb(tmp_path, cad_schema):
    """A single-strategy database for server tests (speed)."""
    database = TemporalDatabase.create(
        str(tmp_path / "serverdb"), cad_schema,
        DatabaseConfig(buffer_pages=64))
    yield database
    try:
        database.close()
    except Exception:
        pass


@pytest.fixture
def server(sdb):
    with DatabaseServer(sdb, max_connections=16) as srv:
        yield srv


def _stock(db, count=4):
    with db.transaction() as txn:
        for index in range(count):
            txn.insert("Part", {"name": f"part{index}",
                                "cost": float(index * 10)}, valid_from=0)


def _raw_connection(server):
    """A bare socket past the handshake, for frame-level assertions."""
    sock = socket.create_connection((server.host, server.port), timeout=5)
    sock.settimeout(5)
    write_frame(sock, Opcode.HELLO, 1, encode_payload(
        {"magic": PROTOCOL_MAGIC, "protocol": PROTOCOL_VERSION}))
    frame = read_frame(sock)
    assert frame.opcode == Opcode.RESULT
    return sock


class TestHandshake:
    def test_reports_version_schema_and_session(self, server):
        with DatabaseClient(server.host, server.port) as client:
            assert client.session["protocol"] == PROTOCOL_VERSION
            assert client.session["schema"] == "cad"
            assert client.session["session_id"] >= 1

    def test_bad_magic_is_refused(self, server):
        sock = socket.create_connection((server.host, server.port),
                                        timeout=5)
        sock.settimeout(5)
        write_frame(sock, Opcode.HELLO, 1, encode_payload(
            {"magic": "nope", "protocol": PROTOCOL_VERSION}))
        frame = read_frame(sock)
        assert frame.opcode == Opcode.ERROR
        assert frame.decode()["error"] == "HandshakeError"
        sock.close()

    def test_version_mismatch_is_refused(self, server):
        sock = socket.create_connection((server.host, server.port),
                                        timeout=5)
        sock.settimeout(5)
        write_frame(sock, Opcode.HELLO, 1, encode_payload(
            {"magic": PROTOCOL_MAGIC, "protocol": 999}))
        frame = read_frame(sock)
        assert frame.opcode == Opcode.ERROR
        body = frame.decode()
        assert body["error"] == "HandshakeError"
        assert "999" in body["message"]
        sock.close()

    def test_non_hello_first_frame_is_refused(self, server):
        sock = socket.create_connection((server.host, server.port),
                                        timeout=5)
        sock.settimeout(5)
        write_frame(sock, Opcode.QUERY, 1, encode_payload(
            {"text": "SELECT ALL FROM Part VALID AT 5"}))
        frame = read_frame(sock)
        assert frame.opcode == Opcode.ERROR
        sock.close()

    def test_client_raises_handshake_error(self, sdb):
        import repro.server.client as client_module
        with DatabaseServer(sdb) as srv:
            original = client_module.PROTOCOL_VERSION
            client_module.PROTOCOL_VERSION = 999
            try:
                with pytest.raises(HandshakeError):
                    DatabaseClient(srv.host, srv.port)
            finally:
                client_module.PROTOCOL_VERSION = original


class TestDifferentialOracle:
    QUERIES = (
        "SELECT ALL FROM Part VALID AT 5",
        "SELECT Part.name FROM Part WHERE Part.cost > 10 VALID AT 5",
        "SELECT ALL FROM Part WHERE Part.name = 'part1' VALID AT 5",
        "SELECT Part.name, Part.cost FROM Part VALID HISTORY",
    )

    def test_concurrent_clients_match_local_bytes(self, sdb, server):
        """≥4 network clients, results byte-for-byte equal to local."""
        _stock(sdb, count=6)
        oracle = {text: encode_payload(result_to_payload(sdb.query(text)))
                  for text in self.QUERIES}
        failures = []

        def worker(worker_id):
            try:
                with DatabaseClient(server.host, server.port) as client:
                    for round_no in range(5):
                        for text in self.QUERIES:
                            remote = encode_payload(client.query(text))
                            if remote != oracle[text]:
                                failures.append(
                                    (worker_id, round_no, text))
            except Exception as exc:  # noqa: BLE001 - collected below
                failures.append((worker_id, "exception", repr(exc)))

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert not failures, failures

    def test_writers_and_readers_interleave_safely(self, sdb, server):
        """Concurrent wire writers + readers; final state matches an
        in-process read exactly."""
        _stock(sdb, count=2)
        errors = []

        def writer(worker_id):
            try:
                with DatabaseClient(server.host, server.port) as client:
                    for index in range(4):
                        with client.transaction() as txn:
                            txn.insert("Part", {
                                "name": f"w{worker_id}-{index}",
                                "cost": float(worker_id)}, valid_from=0)
            except Exception as exc:  # noqa: BLE001
                errors.append(repr(exc))

        def reader():
            try:
                with DatabaseClient(server.host, server.port) as client:
                    for _ in range(10):
                        body = client.query(
                            "SELECT Part.name FROM Part VALID AT 5")
                        assert len(body["entries"]) >= 2
            except Exception as exc:  # noqa: BLE001
                errors.append(repr(exc))

        threads = ([threading.Thread(target=writer, args=(n,))
                    for n in range(3)]
                   + [threading.Thread(target=reader) for _ in range(3)])
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert not errors, errors
        text = "SELECT Part.name FROM Part VALID AT 5"
        local = encode_payload(result_to_payload(sdb.query(text)))
        with DatabaseClient(server.host, server.port) as client:
            assert encode_payload(client.query(text)) == local
        # 3 writers x 4 inserts + 2 stocked parts
        assert len(sdb.query(text).entries) == 14


class TestTransactionsOverTheWire:
    def test_commit_makes_writes_visible_to_other_clients(self, server):
        with DatabaseClient(server.host, server.port) as alice, \
                DatabaseClient(server.host, server.port) as bob:
            with alice.transaction() as txn:
                txn.insert("Part", {"name": "axle", "cost": 7.0},
                           valid_from=0)
            body = bob.query("SELECT Part.name FROM Part VALID AT 5")
            names = [e["row"]["Part.name"] for e in body["entries"]]
            assert names == ["axle"]

    def test_rollback_discards_writes(self, server):
        with DatabaseClient(server.host, server.port) as client:
            txn = client.begin()
            txn.insert("Part", {"name": "ghost"}, valid_from=0)
            txn.rollback()
            body = client.query("SELECT ALL FROM Part VALID AT 5")
            assert body["entries"] == []

    def test_exception_in_context_manager_rolls_back(self, server):
        with DatabaseClient(server.host, server.port) as client:
            with pytest.raises(RuntimeError):
                with client.transaction() as txn:
                    txn.insert("Part", {"name": "doomed"}, valid_from=0)
                    raise RuntimeError("abort it")
            body = client.query("SELECT ALL FROM Part VALID AT 5")
            assert body["entries"] == []

    def test_disconnect_with_open_transaction_rolls_back(self, server):
        sock = _raw_connection(server)
        write_frame(sock, Opcode.BEGIN, 2, b"{}")
        assert read_frame(sock).opcode == Opcode.RESULT
        write_frame(sock, Opcode.MUTATE, 3, encode_payload(
            {"op": "insert", "args": {"type": "Part",
                                      "values": {"name": "orphan"},
                                      "valid_from": 0}}))
        assert read_frame(sock).opcode == Opcode.RESULT
        sock.close()  # vanish mid-transaction
        deadline = time.monotonic() + 5
        with DatabaseClient(server.host, server.port) as client:
            while time.monotonic() < deadline:
                body = client.query("SELECT ALL FROM Part VALID AT 5")
                if body["entries"] == []:
                    return
                time.sleep(0.05)
        pytest.fail("orphaned transaction was not rolled back")

    def test_double_begin_is_a_clean_error(self, server):
        with DatabaseClient(server.host, server.port) as client:
            client.begin()
            with pytest.raises(RemoteError) as info:
                client._roundtrip(Opcode.BEGIN, {})
            assert info.value.remote_type == "TransactionStateError"

    def test_commit_without_begin_is_a_clean_error(self, server):
        with DatabaseClient(server.host, server.port) as client:
            with pytest.raises(RemoteError) as info:
                client._roundtrip(Opcode.COMMIT, {})
            assert info.value.remote_type == "TransactionStateError"

    def test_mutations_autocommit_outside_a_transaction(self, server):
        with DatabaseClient(server.host, server.port) as client:
            atom_id = client.mutate("insert", type="Part",
                                    values={"name": "solo"},
                                    valid_from=0)["atom_id"]
            assert atom_id >= 1
            body = client.query("SELECT Part.name FROM Part VALID AT 5")
            assert [e["row"]["Part.name"] for e in body["entries"]] \
                == ["solo"]


class TestErrorFrames:
    def test_query_errors_carry_the_server_class(self, server):
        with DatabaseClient(server.host, server.port) as client:
            with pytest.raises(RemoteError) as info:
                client.query("SELECT ALL FROM Nonexistent VALID AT 5")
            assert not info.value.transient
            # the session survives a failed request
            assert client.ping()["pong"] is True

    def test_unknown_opcode_gets_an_error_frame_not_a_hangup(self, server):
        sock = _raw_connection(server)
        write_frame(sock, 200, 9, b"{}")
        frame = read_frame(sock)
        assert frame.opcode == Opcode.ERROR
        assert frame.request_id == 9
        assert frame.decode()["error"] == "ProtocolError"
        # connection still usable afterwards
        write_frame(sock, Opcode.PING, 10, b"{}")
        assert read_frame(sock).opcode == Opcode.RESULT
        sock.close()

    def test_corrupt_frame_reports_then_closes(self, server):
        sock = _raw_connection(server)
        sock.sendall(b"\x10\x00\x00\x00" + b"\xde\xad\xbe\xef" * 4)
        frame = read_frame(sock)
        assert frame.opcode == Opcode.ERROR
        assert frame.decode()["error"] == "ProtocolError"
        # after a framing error the server hangs up
        assert sock.recv(1) == b""
        sock.close()

    def test_garbage_bytes_never_kill_the_server(self, server):
        import random
        rng = random.Random(7)
        for _ in range(20):
            sock = socket.create_connection((server.host, server.port),
                                            timeout=5)
            blob = bytes(rng.randrange(256)
                         for _ in range(rng.randrange(1, 128)))
            try:
                sock.sendall(blob)
                sock.close()
            except OSError:
                pass
        # the server still serves fresh, well-formed connections
        with DatabaseClient(server.host, server.port) as client:
            assert client.ping()["pong"] is True


class TestAdmission:
    def test_saturation_sheds_with_a_transient_error(self, sdb):
        admission = AdmissionController(max_inflight=1, max_queued=0,
                                        metrics=sdb.metrics)
        with DatabaseServer(sdb, admission=admission) as srv:
            admission._acquire()  # occupy the only slot
            try:
                with DatabaseClient(srv.host, srv.port,
                                    max_retries=0) as client:
                    with pytest.raises(RemoteError) as info:
                        client.ping()
                    assert info.value.remote_type == "ServerSaturatedError"
                    assert info.value.transient
            finally:
                admission._release()
            assert sdb.metrics.value("server.load_shed") >= 1

    def test_queue_timeout_is_transient(self, sdb):
        admission = AdmissionController(max_inflight=1, max_queued=4,
                                        request_timeout=0.1,
                                        metrics=sdb.metrics)
        with DatabaseServer(sdb, admission=admission) as srv:
            admission._acquire()
            try:
                with DatabaseClient(srv.host, srv.port,
                                    max_retries=0) as client:
                    with pytest.raises(RemoteError) as info:
                        client.ping()
                    assert info.value.remote_type == "RequestTimeoutError"
                    assert info.value.transient
            finally:
                admission._release()

    def test_client_retries_through_transient_saturation(self, sdb):
        admission = AdmissionController(max_inflight=1, max_queued=0,
                                        metrics=sdb.metrics)
        with DatabaseServer(sdb, admission=admission) as srv:
            admission._acquire()
            releaser = threading.Timer(0.15, admission._release)
            releaser.start()
            try:
                with DatabaseClient(srv.host, srv.port, max_retries=5,
                                    backoff_base=0.05) as client:
                    assert client.ping()["pong"] is True
            finally:
                releaser.join()

    def test_connection_cap_refuses_with_error_frame(self, sdb):
        with DatabaseServer(sdb, max_connections=1) as srv:
            keeper = DatabaseClient(srv.host, srv.port)
            try:
                sock = socket.create_connection((srv.host, srv.port),
                                                timeout=5)
                sock.settimeout(5)
                frame = read_frame(sock)
                assert frame.opcode == Opcode.ERROR
                body = frame.decode()
                assert body["error"] == "ServerSaturatedError"
                assert body["transient"] is True
                sock.close()
            finally:
                keeper.close()

    def test_request_metrics_and_slow_query_log(self, sdb):
        admission = AdmissionController(slow_query_ms=0.0,
                                        metrics=sdb.metrics)
        with DatabaseServer(sdb, admission=admission) as srv:
            with DatabaseClient(srv.host, srv.port) as client:
                client.query("SELECT ALL FROM Part VALID AT 5")
            assert sdb.metrics.value("server.requests") >= 1
            histogram = sdb.metrics.histogram("server.request_seconds")
            assert histogram.count >= 1
            entries = admission.slow_queries.entries()
            assert any(e.opcode == "QUERY" and "SELECT" in e.text
                       for e in entries)


class TestSessionLifecycle:
    def test_idle_sessions_are_reaped(self, sdb, monkeypatch):
        import repro.server.server as server_module
        monkeypatch.setattr(server_module, "REAPER_INTERVAL", 0.05)
        with DatabaseServer(sdb, idle_timeout=0.1) as srv:
            client = DatabaseClient(srv.host, srv.port)
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                if sdb.metrics.value("server.connections.reaped") >= 1:
                    break
                time.sleep(0.05)
            assert sdb.metrics.value("server.connections.reaped") >= 1
            with pytest.raises(ConnectionClosedError):
                for _ in range(3):
                    client.ping()

    def test_active_gauge_tracks_connections(self, sdb, server):
        gauge = sdb.metrics.gauge("server.connections.active")
        client = DatabaseClient(server.host, server.port)
        assert gauge.value >= 1
        client.close()
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline and gauge.value != 0:
            time.sleep(0.02)
        assert gauge.value == 0

    def test_explain_over_the_wire_stitches_one_span_tree(self, sdb,
                                                          server):
        _stock(sdb)
        with DatabaseClient(server.host, server.port) as client:
            body = client.explain("SELECT ALL FROM Part VALID AT 5")
        spans = body["profile"]["spans"]
        # One tree: the client's own span roots it, the server's
        # server.request subtree hangs beneath, the kernel beneath that.
        assert len(spans) == 1
        client_span = spans[0]
        assert client_span["name"] == "client.request"
        assert client_span["parent_span_id"] is None
        (server_span,) = client_span["children"]
        assert server_span["name"] == "server.request"
        child_names = [c["name"] for c in server_span["children"]]
        assert "mql.execute" in child_names
        # Both processes share the trace id; the server root parents
        # onto the client span's id.
        assert server_span["trace_id"] == client_span["trace_id"]
        assert server_span["parent_span_id"] == client_span["span_id"]
        assert body["profile"]["trace_id"] == client_span["trace_id"]
        # The client saw the wire + scheduling on top of server time.
        assert (client_span["duration_ms"]
                >= server_span["duration_ms"])

    def test_explain_without_trace_context_keeps_server_root(
            self, sdb, server):
        _stock(sdb)
        with DatabaseClient(server.host, server.port,
                            trace_context=False) as client:
            body = client.explain("SELECT ALL FROM Part VALID AT 5")
        spans = body["profile"]["spans"]
        assert spans[0]["name"] == "server.request"
        # The server still traces under its own fresh trace id.
        assert spans[0]["trace_id"]


class TestGracefulShutdown:
    def test_shutdown_is_idempotent_and_checkpoints(self, sdb):
        server = DatabaseServer(sdb).start()
        with DatabaseClient(server.host, server.port) as client:
            client.mutate("insert", type="Part", values={"name": "saved"},
                          valid_from=0)
        server.shutdown()
        server.shutdown()  # second call is a no-op
        # drained and checkpointed: a clean close needs no extra work
        sdb.close()

    def test_shutdown_drains_inflight_requests(self, sdb):
        _stock(sdb, count=4)
        with DatabaseServer(sdb) as srv:
            results = []

            def run_queries():
                with DatabaseClient(srv.host, srv.port) as client:
                    for _ in range(20):
                        body = client.query(
                            "SELECT ALL FROM Part VALID AT 5")
                        results.append(len(body["entries"]))

            thread = threading.Thread(target=run_queries)
            thread.start()
            time.sleep(0.05)
            srv.shutdown()
            thread.join(10)
            # every response that arrived was complete and correct
            assert results
            assert all(count == 4 for count in results)

    def test_new_connections_refused_after_shutdown(self, sdb):
        server = DatabaseServer(sdb).start()
        server.shutdown()
        with pytest.raises(OSError):
            socket.create_connection((server.host, server.port),
                                     timeout=0.5)


class TestClientPool:
    def test_pool_serves_parallel_queries(self, sdb, server):
        _stock(sdb, count=3)
        oracle = encode_payload(result_to_payload(
            sdb.query("SELECT ALL FROM Part VALID AT 5")))
        mismatches = []
        with ClientPool(server.host, server.port, size=3) as pool:
            def worker():
                for _ in range(5):
                    body = pool.query("SELECT ALL FROM Part VALID AT 5")
                    if encode_payload(body) != oracle:
                        mismatches.append(body)
            threads = [threading.Thread(target=worker) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(30)
        assert not mismatches

    def test_pool_discards_dead_connections(self, sdb):
        with DatabaseServer(sdb) as srv:
            pool = ClientPool(srv.host, srv.port, size=1)
            with pool.acquire() as client:
                client._abandon()  # simulate a died-in-use connection
            # pool replaces it transparently
            assert pool.query("SELECT ALL FROM Part VALID AT 5") is not None
            pool.close()


def _wait_admission_idle(admission, timeout=5.0):
    """The server releases its slot *after* writing the response, so a
    client that just got an answer may race the release; wait it out."""
    deadline = time.monotonic() + timeout
    while admission.inflight and time.monotonic() < deadline:
        time.sleep(0.005)
    assert admission.inflight == 0


class TestTransactionFrameRobustness:
    """Regressions: a failed COMMIT/ROLLBACK must never leave the
    client believing a server-side transaction is gone while the server
    still holds it open (later "autocommit" mutations would silently
    join it and be lost with it)."""

    def test_commit_bypasses_admission_under_saturation(self, sdb):
        admission = AdmissionController(max_inflight=1, max_queued=0,
                                        metrics=sdb.metrics)
        with DatabaseServer(sdb, admission=admission) as srv:
            with DatabaseClient(srv.host, srv.port,
                                max_retries=0) as client:
                txn = client.begin()
                txn.insert("Part", {"name": "committed-under-load"},
                           valid_from=0)
                _wait_admission_idle(admission)
                admission._acquire()  # saturate: gated frames shed now
                try:
                    txn.commit()  # must not be shed
                finally:
                    admission._release()
                body = client.query("SELECT Part.name FROM Part "
                                    "VALID AT 5")
                assert [e["row"]["Part.name"] for e in body["entries"]] \
                    == ["committed-under-load"]

    def test_rollback_bypasses_admission_under_saturation(self, sdb):
        admission = AdmissionController(max_inflight=1, max_queued=0,
                                        metrics=sdb.metrics)
        with DatabaseServer(sdb, admission=admission) as srv:
            with DatabaseClient(srv.host, srv.port,
                                max_retries=0) as client:
                txn = client.begin()
                txn.insert("Part", {"name": "doomed"}, valid_from=0)
                _wait_admission_idle(admission)
                admission._acquire()
                try:
                    txn.rollback()  # must not be shed
                finally:
                    admission._release()
                assert client._closed is False
                assert client._in_transaction is False
                body = client.query("SELECT ALL FROM Part VALID AT 5")
                assert body["entries"] == []

    def test_failed_commit_does_not_leak_zombie_transaction(self, server):
        with DatabaseClient(server.host, server.port) as client:
            real_roundtrip = client._roundtrip
            shed = []

            def flaky(opcode, payload):
                if opcode == Opcode.COMMIT and not shed:
                    shed.append(True)
                    raise RemoteError("ServerSaturatedError",
                                      "synthetic shed", transient=True)
                return real_roundtrip(opcode, payload)

            client._roundtrip = flaky
            txn = client.begin()
            txn.insert("Part", {"name": "zombie"}, valid_from=0)
            with pytest.raises(RemoteError):
                txn.commit()
            # client state is consistent with the server: no open txn
            assert client._in_transaction is False
            # ... so this autocommits instead of joining a zombie txn
            client.mutate("insert", type="Part",
                          values={"name": "survivor"}, valid_from=0)
        with DatabaseClient(server.host, server.port) as checker:
            body = checker.query("SELECT Part.name FROM Part VALID AT 5")
            names = sorted(e["row"]["Part.name"]
                           for e in body["entries"])
            assert names == ["survivor"]

    def test_pool_rolls_back_transaction_leaked_by_borrower(self, server):
        with ClientPool(server.host, server.port, size=1) as pool:
            with pool.acquire() as client:
                client.begin()
                client.mutate("insert", type="Part",
                              values={"name": "leaked"}, valid_from=0)
                # borrower "forgets" to commit or roll back
            with pool.acquire() as client:
                assert client._in_transaction is False
                client.mutate("insert", type="Part",
                              values={"name": "clean"}, valid_from=0)
            body = pool.query("SELECT Part.name FROM Part VALID AT 5")
            names = sorted(e["row"]["Part.name"] for e in body["entries"])
            assert names == ["clean"]


class TestStreamDesyncAbandon:
    """Regression: any framing-level failure must mark the connection
    unusable so callers (and the pool) discard it instead of recycling
    a desynchronized byte stream."""

    def test_protocol_error_abandons_connection(self, server, monkeypatch):
        import repro.server.client as client_module
        from repro.errors import ProtocolError

        client = DatabaseClient(server.host, server.port)

        def bad_read(sock):
            raise ProtocolError("frame CRC mismatch: synthetic")

        monkeypatch.setattr(client_module, "read_frame", bad_read)
        with pytest.raises(ProtocolError):
            client.ping()
        assert client._closed is True

    def test_request_id_mismatch_abandons_connection(self, server,
                                                     monkeypatch):
        import repro.server.client as client_module
        from repro.errors import ProtocolError

        client = DatabaseClient(server.host, server.port)
        real_read = client_module.read_frame

        def skewed(sock):
            frame = real_read(sock)
            return type(frame)(frame.opcode, frame.request_id + 7,
                               frame.payload)

        monkeypatch.setattr(client_module, "read_frame", skewed)
        with pytest.raises(ProtocolError):
            client.ping()
        assert client._closed is True


class TestServerLifecycleRaces:
    def test_reaper_spares_long_running_requests(self, sdb, monkeypatch):
        import repro.server.server as server_module
        monkeypatch.setattr(server_module, "REAPER_INTERVAL", 0.05)
        real_query = sdb.query

        def slow_query(text, params=None):
            time.sleep(0.4)
            return real_query(text, params=params)

        monkeypatch.setattr(sdb, "query", slow_query)
        with DatabaseServer(sdb, idle_timeout=0.15) as srv:
            with DatabaseClient(srv.host, srv.port) as client:
                body = client.query("SELECT ALL FROM Part VALID AT 5")
                assert body["entries"] == []
        assert sdb.metrics.value("server.connections.reaped") == 0

    def test_close_session_interlocks_with_inflight_request(
            self, sdb, monkeypatch):
        import repro.server.server as server_module
        monkeypatch.setattr(server_module, "CLOSE_INTERLOCK_TIMEOUT", 0.1)

        class FakeTxn:
            is_active = True

            def __init__(self):
                self.aborted = False

            def abort(self):
                self.aborted = True

        srv = DatabaseServer(sdb)  # internals only; never started
        try:
            left, _right = socket.socketpair()
            session = server_module.Session(1, left, "test")
            session.txn = FakeTxn()
            session.lock.acquire()  # a request is mid-dispatch
            try:
                srv._close_session(session)
                # the abort must NOT run under the worker's feet
                assert session.txn.aborted is False
            finally:
                session.lock.release()

            left2, _right2 = socket.socketpair()
            quiescent = server_module.Session(2, left2, "test")
            quiescent.txn = FakeTxn()
            txn2 = quiescent.txn
            srv._close_session(quiescent)
            # with no request in flight the rollback goes through
            assert txn2.aborted is True
            assert quiescent.txn is None
        finally:
            srv.shutdown()


class TestProtocolNegotiation:
    def test_v1_client_is_accepted_and_echoed(self, server, monkeypatch):
        """An old client (protocol 1, no trace context) still talks to
        a v2 server; the handshake echoes the client's version."""
        import repro.server.client as client_module
        monkeypatch.setattr(client_module, "PROTOCOL_VERSION", 1)
        with DatabaseClient(server.host, server.port,
                            trace_context=False) as client:
            assert client.session["protocol"] == 1
            assert client.ping()["pong"] is True

    def test_v2_client_negotiates_v2(self, server):
        with DatabaseClient(server.host, server.port) as client:
            assert client.session["protocol"] == PROTOCOL_VERSION


class TestStatsOpcode:
    def test_stats_reports_server_state_and_metrics(self, sdb, server):
        _stock(sdb)
        with DatabaseClient(server.host, server.port) as client:
            client.query("SELECT ALL FROM Part VALID AT 5")
            body = client.stats()
        state = body["server"]
        assert state["sessions"] >= 1
        assert state["max_connections"] == 16
        assert state["uptime_seconds"] >= 0
        assert state["draining"] is False
        assert state["admission"]["max_inflight"] >= 1
        counters = {c["name"] for c in body["metrics"]["counters"]}
        assert "server.requests" in counters
        histograms = {h["name"]: h for h in body["metrics"]["histograms"]}
        assert histograms["server.request_seconds"]["count"] >= 1
        assert "percentiles" in histograms["server.request_seconds"]

    def test_stats_tail_carries_structured_events(self, sdb, server):
        with DatabaseClient(server.host, server.port) as client:
            body = client.stats(events=50)
        names = [e["event"] for e in body["events"]]
        assert "server.start" in names
        assert "session.open" in names

    def test_stats_answers_under_saturation(self, sdb):
        """STATS is ungated: it must answer while gated requests shed —
        a monitor that dies exactly when the server is overloaded is
        useless."""
        admission = AdmissionController(max_inflight=1, max_queued=0,
                                        metrics=sdb.metrics)
        with DatabaseServer(sdb, admission=admission) as srv:
            admission._acquire()  # saturate the only slot
            try:
                with DatabaseClient(srv.host, srv.port,
                                    max_retries=0) as client:
                    with pytest.raises(RemoteError):
                        client.ping()  # gated: shed
                    body = client.stats()  # ungated: answers
                    assert body["server"]["admission"]["inflight"] == 1
            finally:
                admission._release()


class TestStructuredEvents:
    def test_shed_event_carries_request_context(self, sdb):
        admission = AdmissionController(max_inflight=1, max_queued=0,
                                        metrics=sdb.metrics)
        with DatabaseServer(sdb, admission=admission) as srv:
            admission._acquire()
            try:
                with DatabaseClient(srv.host, srv.port,
                                    max_retries=0) as client:
                    with pytest.raises(RemoteError):
                        client.ping()
            finally:
                admission._release()
            (shed,) = admission.events.tail(event="request.shed")
            assert shed["opcode"] == "PING"
            assert shed["session"] >= 1
            assert shed["request_id"] >= 1
            assert shed["trace_id"]  # stamped by the client

    def test_slow_query_entries_carry_ids(self, sdb):
        admission = AdmissionController(slow_query_ms=0.0,
                                        metrics=sdb.metrics)
        with DatabaseServer(sdb, admission=admission) as srv:
            with DatabaseClient(srv.host, srv.port) as client:
                client.query("SELECT ALL FROM Part VALID AT 5")
            entry = next(e for e in admission.slow_queries.entries()
                         if e.opcode == "QUERY")
            assert "SELECT" in entry.text
            assert entry.request_id >= 1
            assert entry.session_id >= 1
            assert entry.trace_id and len(entry.trace_id) == 16

    def test_session_lifecycle_events(self, sdb):
        with DatabaseServer(sdb) as srv:
            with DatabaseClient(srv.host, srv.port) as client:
                client.ping()
            deadline = time.monotonic() + 5
            while (time.monotonic() < deadline
                   and not srv.events.tail(event="session.close")):
                time.sleep(0.02)
            opens = srv.events.tail(event="session.open")
            closes = srv.events.tail(event="session.close")
            assert len(opens) == 1 and len(closes) == 1
            assert opens[0]["session"] == closes[0]["session"]


class TestErrorTraceCorrelation:
    def test_error_frame_echoes_the_request_trace_id(self, server):
        with DatabaseClient(server.host, server.port) as client:
            with pytest.raises(RemoteError) as info:
                client.query("SELECT ALL FROM Nonexistent VALID AT 5")
            assert info.value.trace_id
            assert len(info.value.trace_id) == 16

    def test_no_trace_id_without_trace_context(self, server):
        with DatabaseClient(server.host, server.port,
                            trace_context=False) as client:
            with pytest.raises(RemoteError) as info:
                client.query("SELECT ALL FROM Nonexistent VALID AT 5")
            assert info.value.trace_id is None


class TestHttpSidecar:
    def _get(self, port, path):
        import urllib.error
        import urllib.request
        try:
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}{path}", timeout=5) as resp:
                return resp.status, resp.read().decode(), dict(
                    resp.headers)
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read().decode(), dict(exc.headers)

    def test_metrics_endpoint_serves_prometheus_text(self, sdb):
        with DatabaseServer(sdb, metrics_port=0) as srv:
            with DatabaseClient(srv.host, srv.port) as client:
                client.query("SELECT ALL FROM Part VALID AT 5")
            status, text, headers = self._get(srv.sidecar.port,
                                              "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in headers["Content-Type"]
        assert "# TYPE server_requests_total counter" in text
        assert 'server_request_seconds{quantile="0.95"}' in text
        assert "server_uptime_seconds" in text
        assert "server_draining 0" in text

    def test_health_ok_while_serving(self, sdb):
        with DatabaseServer(sdb, metrics_port=0) as srv:
            status, text, _ = self._get(srv.sidecar.port, "/health")
            assert status == 200
            assert "ok" in text

    def test_stats_endpoint_serves_json(self, sdb):
        import json as json_module
        with DatabaseServer(sdb, metrics_port=0) as srv:
            status, text, _ = self._get(srv.sidecar.port, "/stats")
            assert status == 200
            body = json_module.loads(text)
            assert body["server"]["port"] == srv.port
            assert "metrics" in body

    def test_unknown_path_is_404(self, sdb):
        with DatabaseServer(sdb, metrics_port=0) as srv:
            status, _, _ = self._get(srv.sidecar.port, "/nope")
            assert status == 404

    def test_health_flips_503_during_drain(self, sdb, monkeypatch):
        """/health must answer 503 *while* graceful shutdown drains —
        that window is exactly when a load balancer needs the signal."""
        server = DatabaseServer(sdb, metrics_port=0).start()
        release = threading.Event()
        original = sdb.checkpoint

        def blocked_checkpoint(*args, **kwargs):
            release.wait(10)
            return original(*args, **kwargs)

        monkeypatch.setattr(sdb, "checkpoint", blocked_checkpoint)
        stopper = threading.Thread(target=server.shutdown)
        stopper.start()
        try:
            deadline = time.monotonic() + 5
            status = None
            while time.monotonic() < deadline:
                status, text, _ = self._get(server.sidecar.port,
                                            "/health")
                if status == 503:
                    assert "draining" in text
                    break
                time.sleep(0.02)
            assert status == 503
        finally:
            release.set()
            stopper.join(10)
        assert not stopper.is_alive()


class TestMonitorCli:
    def test_monitor_once_prints_a_frame(self, sdb, server, capsys):
        from repro.__main__ import main
        _stock(sdb)
        with DatabaseClient(server.host, server.port) as client:
            client.query("SELECT ALL FROM Part VALID AT 5")
        code = main(["monitor", "--connect",
                     f"{server.host}:{server.port}", "--once"])
        assert code == 0
        out = capsys.readouterr().out
        assert f"repro server {server.host}:{server.port}" in out
        assert "sessions" in out and "inflight" in out
        assert "latency" in out and "p95" in out
        assert "session.open" in out  # event tail rendered

    def test_monitor_bad_connect_arg(self, capsys):
        from repro.__main__ import main
        assert main(["monitor", "--connect", "nonsense", "--once"]) == 2

    def test_render_guards_zero_elapsed(self):
        # Two polls landing inside one clock tick must not divide by
        # zero — the rate line is simply withheld for that frame.
        from repro.__main__ import _render_monitor
        body = {
            "server": {"host": "h", "port": 1, "uptime_seconds": 3.0,
                       "sessions": 0, "max_connections": 4,
                       "admission": {"inflight": 0, "max_inflight": 2,
                                     "queued": 0, "max_queued": 8}},
            "metrics": {"counters": [
                {"name": "server.requests", "labels": {}, "value": 7}]},
        }
        frame, totals = _render_monitor(body, (3, 0), 0.0)
        assert totals == (7, 0)
        assert "throughput" not in frame
        frame, _ = _render_monitor(body, (3, 0), 2.0)
        assert "throughput 2.0 req/s" in frame


# ---------------------------------------------------------------------------
# Protocol v3: streaming cursors, the event loop, and connection scaling.
# Everything above this line predates the async server and must keep
# passing unmodified — the wire behavior of v1/v2 clients is frozen.
# ---------------------------------------------------------------------------


def _handshake_raw(server, protocol=None):
    """Raw socket past a handshake at an explicit protocol version."""
    sock = socket.create_connection((server.host, server.port), timeout=5)
    sock.settimeout(5)
    write_frame(sock, Opcode.HELLO, 1, encode_payload(
        {"magic": PROTOCOL_MAGIC,
         "protocol": PROTOCOL_VERSION if protocol is None else protocol}))
    frame = read_frame(sock)
    assert frame.opcode == Opcode.RESULT
    return sock


def _wait_until(predicate, timeout=5.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestStreamingCursors:
    def test_streamed_result_equals_eager(self, sdb, server):
        _stock(sdb, count=37)
        with DatabaseClient(server.host, server.port) as client:
            eager = client.query("SELECT ALL FROM Part VALID AT 5")
            cursor = client.query_stream("SELECT ALL FROM Part VALID AT 5",
                                         chunk_entries=10)
            chunks = list(cursor.chunks())
            assert [len(c) for c in chunks] == [10, 10, 10, 7]
            assert [e for c in chunks for e in c] == eager["entries"]
            assert cursor.done
        assert server.state_snapshot()["open_cursors"] == 0

    def test_projected_stream_with_params(self, sdb, server):
        _stock(sdb, count=12)
        with DatabaseClient(server.host, server.port) as client:
            text = ("SELECT Part.name FROM Part WHERE Part.cost > $c "
                    "VALID AT 5")
            eager = client.query(text, params={"c": 40.0})
            streamed = list(client.query_stream(text, params={"c": 40.0},
                                                chunk_entries=3))
            assert streamed == eager["entries"]

    def test_interleaved_request_fails_fast_client_side(self, sdb, server):
        from repro.errors import CursorStateError
        _stock(sdb, count=12)
        with DatabaseClient(server.host, server.port) as client:
            cursor = client.query_stream("SELECT ALL FROM Part VALID AT 5",
                                         chunk_entries=3)
            with pytest.raises(CursorStateError):
                client.ping()
            cursor.close()
            # redeeming the prefetch restored request/response sync
            assert client.ping()["pong"] is True

    def test_close_mid_stream_frees_server_cursor(self, sdb, server):
        _stock(sdb, count=25)
        with DatabaseClient(server.host, server.port) as client:
            cursor = client.query_stream("SELECT ALL FROM Part VALID AT 5",
                                         chunk_entries=4)
            next(cursor.chunks())
            cursor.close()
            assert _wait_until(
                lambda: server.state_snapshot()["open_cursors"] == 0)
            assert client.ping()["pong"] is True

    def test_fetch_rejected_below_protocol_v3(self, server):
        sock = _handshake_raw(server, protocol=2)
        write_frame(sock, Opcode.FETCH, 2, encode_payload({"cursor_id": 1}))
        frame = read_frame(sock)
        assert frame.opcode == Opcode.ERROR
        assert frame.decode()["error"] == "ProtocolError"
        sock.close()

    def test_stream_open_rejected_below_protocol_v3(self, server):
        sock = _handshake_raw(server, protocol=2)
        write_frame(sock, Opcode.QUERY, 2, encode_payload(
            {"text": "SELECT ALL FROM Part VALID AT 5", "stream": True}))
        frame = read_frame(sock)
        assert frame.opcode == Opcode.ERROR
        assert frame.decode()["error"] == "ProtocolError"
        sock.close()

    def test_unknown_cursor_is_a_clean_error(self, server):
        sock = _handshake_raw(server)
        write_frame(sock, Opcode.FETCH, 2, encode_payload(
            {"cursor_id": 99}))
        frame = read_frame(sock)
        assert frame.opcode == Opcode.ERROR
        assert frame.decode()["error"] == "CursorStateError"
        # session survives
        write_frame(sock, Opcode.PING, 3, b"{}")
        assert read_frame(sock).opcode == Opcode.RESULT
        sock.close()

    def test_per_session_cursor_limit(self, sdb, server):
        from repro.server.server import MAX_CURSORS_PER_SESSION
        _stock(sdb, count=6)
        sock = _handshake_raw(server)
        for index in range(MAX_CURSORS_PER_SESSION):
            write_frame(sock, Opcode.QUERY, 10 + index, encode_payload(
                {"text": "SELECT ALL FROM Part VALID AT 5",
                 "stream": {"chunk_entries": 2}}))
            frame = read_frame(sock)
            assert frame.opcode == Opcode.RESULT, frame.decode()
        write_frame(sock, Opcode.QUERY, 50, encode_payload(
            {"text": "SELECT ALL FROM Part VALID AT 5", "stream": True}))
        frame = read_frame(sock)
        assert frame.opcode == Opcode.ERROR
        body = frame.decode()
        assert body["error"] == "CursorStateError"
        assert body["transient"] is False
        # CLOSE_CURSOR frees a slot
        write_frame(sock, Opcode.CLOSE_CURSOR, 51, encode_payload(
            {"cursor_id": 1}))
        assert read_frame(sock).decode()["closed"] is True
        write_frame(sock, Opcode.QUERY, 52, encode_payload(
            {"text": "SELECT ALL FROM Part VALID AT 5", "stream": True}))
        assert read_frame(sock).opcode == Opcode.RESULT
        sock.close()

    def test_session_death_reclaims_cursors(self, sdb, server):
        _stock(sdb, count=20)
        sock = _handshake_raw(server)
        write_frame(sock, Opcode.QUERY, 2, encode_payload(
            {"text": "SELECT ALL FROM Part VALID AT 5",
             "stream": {"chunk_entries": 3}}))
        assert read_frame(sock).opcode == Opcode.RESULT
        assert server.state_snapshot()["open_cursors"] == 1
        sock.close()  # abrupt death, no CLOSE_CURSOR
        assert _wait_until(
            lambda: server.state_snapshot()["open_cursors"] == 0)

    def test_exhaustion_auto_closes_server_side(self, sdb, server):
        _stock(sdb, count=5)
        sock = _handshake_raw(server)
        write_frame(sock, Opcode.QUERY, 2, encode_payload(
            {"text": "SELECT ALL FROM Part VALID AT 5",
             "stream": {"chunk_entries": 2}}))
        cursor_id = read_frame(sock).decode()["cursor"]["cursor_id"]
        done = False
        for rid in range(3, 10):
            write_frame(sock, Opcode.FETCH, rid, encode_payload(
                {"cursor_id": cursor_id}))
            body = read_frame(sock).decode()
            if body["done"]:
                assert body["entries"] == []
                done = True
                break
        assert done
        assert server.state_snapshot()["open_cursors"] == 0
        # a FETCH after exhaustion names an unknown cursor now
        write_frame(sock, Opcode.FETCH, 20, encode_payload(
            {"cursor_id": cursor_id}))
        assert read_frame(sock).decode()["error"] == "CursorStateError"
        sock.close()


class TestOversizedResult:
    def test_encode_result_boundary(self, sdb):
        from repro.errors import ResultTooLargeError
        from repro.server.protocol import (_FRAME_OVERHEAD,
                                           MAX_FRAME_BYTES)
        srv = DatabaseServer(sdb)  # never started; encoding is pure
        try:
            base = len(encode_payload({"pad": ""}))
            exact = MAX_FRAME_BYTES - _FRAME_OVERHEAD - base
            assert isinstance(
                srv._encode_result(1, {"pad": "x" * exact}), bytes)
            with pytest.raises(ResultTooLargeError) as info:
                srv._encode_result(1, {"pad": "x" * (exact + 1)})
            assert "cursor" in str(info.value)
        finally:
            srv.shutdown()

    def test_oversized_result_is_structured_and_cursor_recovers(
            self, sdb, monkeypatch):
        import repro.server.protocol as protocol_mod
        _stock(sdb, count=40)
        # Shrink the frame cap so a modest result overflows it without
        # building 8 MiB of data; both sides share the module global.
        monkeypatch.setattr(protocol_mod, "MAX_FRAME_BYTES", 4096)
        with DatabaseServer(sdb) as srv:
            with DatabaseClient(srv.host, srv.port,
                                max_retries=0) as client:
                with pytest.raises(RemoteError) as info:
                    client.query("SELECT ALL FROM Part VALID AT 5")
                assert info.value.remote_type == "ResultTooLargeError"
                assert info.value.transient is False
                # the session survives, and the suggested cursor works
                streamed = list(client.query_stream(
                    "SELECT ALL FROM Part VALID AT 5", chunk_entries=2))
                assert len(streamed) == 40


class TestAsyncAdmission:
    def test_queue_timeout_is_deterministic(self, sdb):
        admission = AdmissionController(max_inflight=1, max_queued=4,
                                        request_timeout=0.2,
                                        metrics=sdb.metrics)
        with DatabaseServer(sdb, admission=admission) as srv:
            admission._acquire()  # occupy the only slot
            try:
                with DatabaseClient(srv.host, srv.port,
                                    max_retries=0) as client:
                    started = time.monotonic()
                    with pytest.raises(RemoteError) as info:
                        client.ping()
                    waited = time.monotonic() - started
                    assert info.value.remote_type == "RequestTimeoutError"
                    assert info.value.transient
                    assert 0.1 <= waited < 2.0
            finally:
                admission._release()

    def test_queue_full_sheds_while_first_request_waits(self, sdb):
        admission = AdmissionController(max_inflight=1, max_queued=1,
                                        request_timeout=5.0,
                                        metrics=sdb.metrics)
        with DatabaseServer(sdb, admission=admission) as srv:
            admission._acquire()
            try:
                first = _handshake_raw(srv)
                second = _handshake_raw(srv)
                write_frame(first, Opcode.PING, 2, b"{}")
                # let the first PING park before the second arrives
                assert _wait_until(lambda: admission.queued == 1)
                write_frame(second, Opcode.PING, 2, b"{}")
                shed = read_frame(second)
                assert shed.opcode == Opcode.ERROR
                body = shed.decode()
                assert body["error"] == "ServerSaturatedError"
                assert body["transient"] is True
            finally:
                admission._release()
            # the freed slot dispatches the parked request
            assert read_frame(first).opcode == Opcode.RESULT
            first.close()
            second.close()

    def test_parked_request_runs_when_slot_frees(self, sdb):
        admission = AdmissionController(max_inflight=1, max_queued=8,
                                        request_timeout=5.0,
                                        metrics=sdb.metrics)
        with DatabaseServer(sdb, admission=admission) as srv:
            admission._acquire()
            sock = _handshake_raw(srv)
            write_frame(sock, Opcode.PING, 2, b"{}")
            assert _wait_until(lambda: admission.queued == 1)
            admission._release()
            frame = read_frame(sock)
            assert frame.opcode == Opcode.RESULT
            assert frame.decode()["pong"] is True
            sock.close()


class TestHandshakeMetrics:
    def test_handshake_not_counted_as_request_latency(self, sdb, server):
        sock = _handshake_raw(server)
        # the loop observes the histogram just after queuing the HELLO
        # response, so give it a beat
        assert _wait_until(
            lambda: sdb.metrics.histogram(
                "server.handshake_seconds").count == 1)
        assert sdb.metrics.histogram("server.request_seconds").count == 0
        write_frame(sock, Opcode.PING, 2, b"{}")
        assert read_frame(sock).opcode == Opcode.RESULT
        assert _wait_until(
            lambda: sdb.metrics.histogram(
                "server.request_seconds").count == 1)
        assert sdb.metrics.histogram("server.handshake_seconds").count == 1
        sock.close()


class TestPipelining:
    def test_burst_of_requests_answers_in_order(self, server):
        from repro.server.protocol import encode_frame
        sock = _handshake_raw(server)
        burst = b"".join(
            encode_frame(Opcode.PING, rid, b"{}")
            for rid in range(10, 15))
        sock.sendall(burst)
        for rid in range(10, 15):
            frame = read_frame(sock)
            assert frame.opcode == Opcode.RESULT
            assert frame.request_id == rid
        sock.close()


class TestConnectionScaling:
    def test_a_thousand_idle_sessions_fit_bounded_memory(self, sdb):
        import resource
        soft, _ = resource.getrlimit(resource.RLIMIT_NOFILE)
        if soft < 2300:
            pytest.skip(f"RLIMIT_NOFILE {soft} too low for the soak")

        def rss_kb():
            with open("/proc/self/status", encoding="ascii") as handle:
                for line in handle:
                    if line.startswith("VmRSS:"):
                        return int(line.split()[1])
            raise AssertionError("no VmRSS")

        with DatabaseServer(sdb, max_connections=1100,
                            idle_timeout=None) as srv:
            socks = []
            try:
                for _ in range(500):
                    socks.append(_handshake_raw(srv))
                rss_500 = rss_kb()
                for _ in range(500):
                    socks.append(_handshake_raw(srv))
                rss_1000 = rss_kb()
                # Steady-state cost of 500 more idle sessions stays
                # bounded: buffers are tiny and no thread is spawned.
                assert rss_1000 - rss_500 < 500 * 64, (rss_500, rss_1000)
                assert srv.state_snapshot()["sessions"] == 1000
                # the loop still answers promptly under the load
                probe = socks[0]
                started = time.monotonic()
                write_frame(probe, Opcode.PING, 2, b"{}")
                assert read_frame(probe).opcode == Opcode.RESULT
                assert time.monotonic() - started < 1.0
            finally:
                for sock in socks:
                    sock.close()


class TestClientPoolHealthCheck:
    def test_stale_dead_connection_is_replaced_not_lent(self, server):
        with ClientPool(server.host, server.port, size=1,
                        health_check_idle=0.0) as pool:
            with pool.acquire() as client:
                assert client.ping()["pong"] is True
                first = client
            # kill the idle connection behind the pool's back
            first._sock.close()
            with pool.acquire() as client:
                assert client is not first
                assert client.ping()["pong"] is True

    def test_fresh_connections_skip_the_probe(self, server):
        with ClientPool(server.host, server.port, size=1,
                        health_check_idle=3600.0) as pool:
            with pool.acquire() as client:
                first = client
            with pool.acquire() as client:
                assert client is first  # no probe, no replacement

    def test_health_check_disabled_surfaces_error_to_borrower(
            self, server):
        with ClientPool(server.host, server.port, size=1,
                        health_check_idle=None,
                        max_retries=0) as pool:
            with pool.acquire() as client:
                client.ping()
                first = client
            first._sock.close()
            with pytest.raises(ConnectionClosedError):
                with pool.acquire() as client:
                    client.ping()
            # the pool self-heals on the next acquisition
            with pool.acquire() as client:
                assert client.ping()["pong"] is True


class TestChangeStreams:
    """SUBSCRIBE over the wire: the client-side feed, cursor resume
    across reconnects, retention release, and DIFF profiling."""

    def _mutate(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "hub", "cost": 4.0},
                              valid_from=0)
            comp = txn.insert("Component", {"cname": "bearing"},
                              valid_from=0)
            txn.link("contains", part, comp, valid_from=0)
        with db.transaction() as txn:
            txn.update(part, {"cost": 6.5}, valid_from=0)
        return part, comp

    def _drain(self, feed):
        events = []
        while True:
            batch = feed.poll(wait_ms=0)
            events.extend(batch)
            if feed.caught_up:
                return events

    def test_feed_yields_typed_events_in_commit_order(self, sdb, server):
        with DatabaseClient(server.host, server.port) as client:
            feed = client.subscribe("wire-tail", from_lsn=1)
            part, comp = self._mutate(sdb)
            events = self._drain(feed)
            feed.close()
        kinds = [e["kind"] for e in events]
        assert kinds == ["atom_created", "atom_created", "link_added",
                         "attribute_changed"]
        lsns = [e["lsn"] for e in events]
        assert lsns == sorted(lsns)
        created = events[0]
        assert created["type"] == "Part" and created["atom_id"] == part
        assert created["before"] is None
        assert created["after"]["name"] == "hub"
        link = events[2]
        assert (link["link"], link["src"], link["dst"]) == \
            ("contains", part, comp)
        changed = events[3]
        assert changed["before"]["cost"] == 4.0
        assert changed["after"]["cost"] == 6.5

    def test_server_side_filters(self, sdb, server):
        with DatabaseClient(server.host, server.port) as client:
            feed = client.subscribe("wire-filtered", from_lsn=1,
                                    types=["Part"],
                                    kinds=["atom_created",
                                           "attribute_changed"])
            self._mutate(sdb)
            events = self._drain(feed)
            feed.close()
        assert [e["kind"] for e in events] == ["atom_created",
                                               "attribute_changed"]
        assert {e["type"] for e in events} == {"Part"}

    def test_reconnect_resumes_with_no_gaps_or_duplicates(self, sdb,
                                                          server):
        part, comp = self._mutate(sdb)
        with DatabaseClient(server.host, server.port) as client:
            feed = client.subscribe("wire-resume", from_lsn=1,
                                    batch_size=2)
            first = feed.poll(wait_ms=0)
            assert len(first) == 2
            feed._pending_ack = first[-1]["lsn"]
            feed.close()  # flushes the ack; cursor stays server-side
        # A new connection, no from_lsn: the persisted cursor decides.
        with DatabaseClient(server.host, server.port) as client:
            feed = client.subscribe("wire-resume")
            rest = self._drain(feed)
            feed.close()
        lsns = [e["lsn"] for e in first] + [e["lsn"] for e in rest]
        assert lsns == sorted(set(lsns)), "gap or duplicate across resume"
        assert [e["kind"] for e in rest] == ["link_added",
                                             "attribute_changed"]

    def test_cancel_releases_cursor_and_retention(self, sdb, server):
        self._mutate(sdb)
        with DatabaseClient(server.host, server.port) as client:
            feed = client.subscribe("wire-cancel", from_lsn=1)
            self._drain(feed)
            assert "wire-cancel" in sdb._wal.cdc_subscribers()
            feed.cancel()
        assert "wire-cancel" not in sdb._wal.cdc_subscribers()
        from repro.cdc.source import CDC_EXTRAS_KEY
        extras = sdb._catalog.extras.get(CDC_EXTRAS_KEY) or {}
        assert "wire-cancel" not in extras

    def test_stats_reports_cdc_subscribers(self, sdb, server):
        self._mutate(sdb)
        with DatabaseClient(server.host, server.port) as client:
            feed = client.subscribe("wire-stats", from_lsn=1)
            self._drain(feed)
            feed.poll(wait_ms=0)  # ride the ack of the drained batch
            body = client.stats()
            feed.close()
        cdc = body["server"]["cdc"]
        assert cdc["head"] >= 1
        entry = cdc["subscribers"]["wire-stats"]
        assert entry["lag"] == 0
        assert entry["held_bytes"] >= 0

    def test_explain_profiles_diff_over_the_wire(self, sdb, server):
        t0 = sdb._clock.now() - 1
        self._mutate(sdb)
        t2 = sdb._clock.now() - 1
        with DatabaseClient(server.host, server.port) as client:
            body = client.explain(
                f"DIFF Part.contains.Component BETWEEN {t0} AND {t2}")
        kinds = {entry["row"]["kind"] for entry in body["entries"]}
        assert kinds == {"atom_created", "link_added"}
        flat = []
        def walk(spans):
            for span in spans:
                flat.append(span["name"])
                walk(span.get("children", ()))
        walk(body["profile"]["spans"])
        assert "diff" in flat
        assert flat.count("slice") >= 2
        assert "compare" in flat

"""Tests for the slotted page layout."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PageError, PageFullError
from repro.storage.slotted import RESERVED_BYTES, SlottedPage

PAGE_SIZE = 512


@pytest.fixture
def page():
    return SlottedPage.format(bytearray(PAGE_SIZE))


class TestBasics:
    def test_insert_and_read(self, page):
        slot = page.insert(b"hello")
        assert page.read(slot) == b"hello"

    def test_multiple_records(self, page):
        slots = [page.insert(f"rec-{i}".encode()) for i in range(5)]
        for index, slot in enumerate(slots):
            assert page.read(slot) == f"rec-{index}".encode()

    def test_empty_record(self, page):
        slot = page.insert(b"")
        assert page.read(slot) == b""

    def test_capacity_record_fits(self):
        page = SlottedPage.format(bytearray(PAGE_SIZE))
        big = b"x" * SlottedPage.capacity(PAGE_SIZE)
        slot = page.insert(big)
        assert page.read(slot) == big

    def test_oversized_record_rejected(self, page):
        with pytest.raises(PageFullError):
            page.insert(b"x" * (SlottedPage.capacity(PAGE_SIZE) + 1))

    def test_reserved_area_untouched(self):
        data = bytearray(PAGE_SIZE)
        page = SlottedPage.format(data)
        data[:RESERVED_BYTES] = b"R" * RESERVED_BYTES
        page.insert(b"x" * 100)
        page.insert(b"y" * 100)
        assert bytes(data[:RESERVED_BYTES]) == b"R" * RESERVED_BYTES


class TestDelete:
    def test_delete_frees_slot(self, page):
        slot = page.insert(b"doomed")
        page.delete(slot)
        with pytest.raises(PageError):
            page.read(slot)

    def test_deleted_slot_is_reused(self, page):
        a = page.insert(b"a")
        page.insert(b"b")
        page.delete(a)
        again = page.insert(b"c")
        assert again == a

    def test_delete_twice_rejected(self, page):
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(PageError):
            page.delete(slot)

    def test_bad_slot_rejected(self, page):
        with pytest.raises(PageError):
            page.read(17)

    def test_iter_slots_skips_deleted(self, page):
        slots = [page.insert(bytes([i])) for i in range(4)]
        page.delete(slots[1])
        assert list(page.iter_slots()) == [slots[0], slots[2], slots[3]]


class TestUpdate:
    def test_shrinking_update_in_place(self, page):
        slot = page.insert(b"a much longer record body")
        page.update(slot, b"short")
        assert page.read(slot) == b"short"

    def test_growing_update(self, page):
        slot = page.insert(b"tiny")
        page.update(slot, b"g" * 200)
        assert page.read(slot) == b"g" * 200

    def test_update_keeps_slot_number(self, page):
        a = page.insert(b"a" * 50)
        b = page.insert(b"b" * 50)
        page.update(a, b"A" * 150)
        assert page.read(a) == b"A" * 150
        assert page.read(b) == b"b" * 50

    def test_growing_update_beyond_capacity_rejected(self, page):
        slot = page.insert(b"x")
        with pytest.raises(PageFullError):
            page.update(slot, b"y" * PAGE_SIZE)
        assert page.read(slot) == b"x"  # rolled back


class TestCompaction:
    def test_space_reclaimed_after_deletes(self, page):
        chunk = SlottedPage.capacity(PAGE_SIZE) // 4
        slots = [page.insert(b"x" * chunk) for _ in range(3)]
        for slot in slots:
            page.delete(slot)
        big = b"y" * (chunk * 3)
        slot = page.insert(big)  # requires compaction to fit contiguously
        assert page.read(slot) == big

    def test_interleaved_delete_then_fill(self, page):
        chunk = 60
        slots = [page.insert(bytes([i]) * chunk) for i in range(6)]
        for slot in slots[::2]:
            page.delete(slot)
        survivors = {slot: page.read(slot) for slot in slots[1::2]}
        page.insert(b"z" * (chunk * 2))  # forces compaction
        for slot, expected in survivors.items():
            assert page.read(slot) == expected

    def test_explicit_compact_preserves_records(self, page):
        slots = {page.insert(f"r{i}".encode() * 3): f"r{i}".encode() * 3
                 for i in range(5)}
        page.compact()
        for slot, expected in slots.items():
            assert page.read(slot) == expected


class TestFreeSpace:
    def test_free_space_decreases_on_insert(self, page):
        before = page.free_space()
        page.insert(b"x" * 100)
        assert page.free_space() <= before - 100

    def test_free_space_recovers_on_delete(self, page):
        baseline = page.free_space()
        slot = page.insert(b"x" * 100)
        page.delete(slot)
        assert page.free_space() == baseline

    def test_live_records_count(self, page):
        page.insert(b"a")
        slot = page.insert(b"b")
        page.delete(slot)
        assert page.live_records() == 1


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["insert", "delete", "update"]),
                          st.integers(0, 20),
                          st.binary(max_size=60)),
                max_size=60))
def test_random_operations_match_model(operations):
    """The slotted page behaves like a dict from slot to payload."""
    page = SlottedPage.format(bytearray(PAGE_SIZE))
    model = {}
    for kind, key, payload in operations:
        if kind == "insert":
            try:
                slot = page.insert(payload)
            except PageFullError:
                continue
            assert slot not in model
            model[slot] = payload
        elif kind == "delete" and model:
            slot = sorted(model)[key % len(model)]
            page.delete(slot)
            del model[slot]
        elif kind == "update" and model:
            slot = sorted(model)[key % len(model)]
            try:
                page.update(slot, payload)
            except PageFullError:
                continue
            model[slot] = payload
    assert {slot: page.read(slot) for slot in page.iter_slots()} == model

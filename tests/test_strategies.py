"""Tests for the three version-storage strategies.

Every test in :class:`TestContract` runs against all strategies through
the ``store`` fixture — the contract is strategy-independent; the
dedicated classes below pin down the per-strategy cost signatures.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError, UnknownAtomError
from repro.storage.buffer import BufferManager
from repro.storage.disk import DiskManager
from repro.storage.strategies import (
    StoredVersion,
    VersionStrategy,
    open_version_store,
)


@pytest.fixture
def store(buffer, strategy):
    return open_version_store(strategy, buffer)


def sv(start, end, live=True, payload=b""):
    return StoredVersion(start, end, live, payload or
                         f"v[{start},{end})".encode())


class TestContract:
    def test_missing_atom(self, store):
        assert not store.exists(9)
        with pytest.raises(UnknownAtomError):
            store.read_all(9)

    def test_single_version(self, store):
        store.append_version(1, sv(0, 100))
        assert store.exists(1)
        assert store.version_count(1) == 1
        assert store.read_current(1) == (0, sv(0, 100))

    def test_append_order_preserved(self, store):
        for i in range(10):
            store.append_version(1, sv(i * 10, (i + 1) * 10))
        versions = store.read_all(1)
        assert [v.vt_start for v in versions] == [i * 10 for i in range(10)]

    def test_read_at_hits_the_right_version(self, store):
        for i in range(10):
            store.append_version(1, sv(i * 10, (i + 1) * 10))
        assert store.read_at(1, 55) == [(5, sv(50, 60))]
        assert store.read_at(1, 0) == [(0, sv(0, 10))]
        assert store.read_at(1, 99) == [(9, sv(90, 100))]

    def test_read_at_miss(self, store):
        store.append_version(1, sv(0, 10))
        assert store.read_at(1, 50) == []

    def test_read_at_skips_dead_versions(self, store):
        store.append_version(1, sv(0, 100, live=False))
        store.append_version(1, sv(0, 100, live=True, payload=b"alive"))
        assert store.read_at(1, 5) == [(1, StoredVersion(0, 100, True,
                                                         b"alive"))]

    def test_replace_version(self, store):
        store.append_version(1, sv(0, 10))
        store.append_version(1, sv(10, 20))
        store.replace_version(1, 0, sv(0, 10, live=False, payload=b"closed"))
        versions = store.read_all(1)
        assert versions[0] == StoredVersion(0, 10, False, b"closed")
        assert versions[1] == sv(10, 20)

    def test_replace_with_larger_payload(self, store):
        store.append_version(1, sv(0, 10))
        store.append_version(1, sv(10, 20))
        big = b"B" * 3000
        store.replace_version(1, 0, StoredVersion(0, 10, True, big))
        assert store.read_all(1)[0].payload == big

    def test_replace_newest(self, store):
        store.append_version(1, sv(0, 10))
        store.append_version(1, sv(10, 20))
        store.replace_version(1, 1, StoredVersion(10, 20, True, b"new"))
        assert store.read_current(1) == (1, StoredVersion(10, 20, True,
                                                          b"new"))

    def test_replace_bad_seq(self, store):
        store.append_version(1, sv(0, 10))
        with pytest.raises(StorageError):
            store.replace_version(1, 5, sv(0, 10))

    def test_pop_version(self, store):
        store.append_version(1, sv(0, 10))
        store.append_version(1, sv(10, 20))
        store.pop_version(1)
        assert store.version_count(1) == 1
        assert store.read_current(1) == (0, sv(0, 10))

    def test_pop_last_removes_atom(self, store):
        store.append_version(1, sv(0, 10))
        store.pop_version(1)
        assert not store.exists(1)

    def test_pop_then_append_again(self, store):
        store.append_version(1, sv(0, 10))
        store.append_version(1, sv(10, 20))
        store.pop_version(1)
        store.append_version(1, sv(10, 30))
        assert store.read_all(1) == [sv(0, 10), sv(10, 30)]

    def test_delete_atom(self, store):
        store.append_version(1, sv(0, 10))
        store.append_version(1, sv(10, 20))
        store.delete_atom(1)
        assert not store.exists(1)

    def test_many_atoms_are_independent(self, store):
        for atom_id in range(1, 30):
            for i in range(atom_id % 5 + 1):
                store.append_version(atom_id, sv(i, i + 1))
        for atom_id in range(1, 30):
            assert store.version_count(atom_id) == atom_id % 5 + 1
        assert sorted(store.atom_ids()) == list(range(1, 30))

    def test_scan_all(self, store):
        store.append_version(1, sv(0, 10))
        store.append_version(2, sv(5, 15))
        store.append_version(2, sv(15, 25))
        scanned = {atom_id: versions for atom_id, versions
                   in store.scan_all()}
        assert set(scanned) == {1, 2}
        assert len(scanned[2]) == 2

    def test_large_payloads_span_pages(self, store):
        big = bytes(range(256)) * 64  # 16 KiB
        store.append_version(1, StoredVersion(0, 10, True, big))
        store.append_version(1, StoredVersion(10, 20, True, big * 2))
        versions = store.read_all(1)
        assert versions[0].payload == big
        assert versions[1].payload == big * 2

    def test_long_history(self, store):
        for i in range(200):
            store.append_version(1, sv(i, i + 1))
        assert store.version_count(1) == 200
        assert store.read_at(1, 137) == [(137, sv(137, 138))]

    def test_stats_reflect_growth(self, store):
        empty_pages = store.stats().total_pages
        for atom_id in range(1, 40):
            store.append_version(atom_id,
                                 StoredVersion(0, 10, True, b"x" * 500))
        grown = store.stats()
        assert grown.total_pages > empty_pages
        assert grown.total_bytes == grown.total_pages * grown.page_size

    def test_persist_and_reopen(self, tmp_path, strategy):
        disk = DiskManager(tmp_path / "s.db")
        pool = BufferManager(disk, capacity=32)
        store = open_version_store(strategy, pool)
        for atom_id in (1, 2, 3):
            for i in range(4):
                store.append_version(atom_id, sv(i * 5, (i + 1) * 5))
        state = store.persist_state()
        pool.flush_all()
        reopened = open_version_store(strategy, pool, state)
        for atom_id in (1, 2, 3):
            assert reopened.version_count(atom_id) == 4
            assert reopened.read_at(atom_id, 7) == [(1, sv(5, 10))]
        disk.close()


class TestChainedSignature:
    """The chained store's walk cost grows with temporal distance."""

    def test_chain_walk_reads_proportional_to_distance(self, tmp_path):
        disk = DiskManager(tmp_path / "c.db")
        pool = BufferManager(disk, capacity=256)
        store = open_version_store(VersionStrategy.CHAINED, pool)
        for i in range(64):
            store.append_version(1, sv(i, i + 1, payload=b"p" * 200))
        pool.stats.reset()
        store.read_at(1, 63)  # newest: directory + 1 record
        near = pool.stats.hits + pool.stats.misses
        pool.stats.reset()
        store.read_at(1, 0)  # oldest: walks the whole chain
        far = pool.stats.hits + pool.stats.misses
        assert far > near * 4
        disk.close()


class TestSeparatedSignature:
    """The separated store answers current reads from the directory."""

    def test_current_read_is_flat_in_history_length(self, tmp_path):
        disk = DiskManager(tmp_path / "s.db")
        pool = BufferManager(disk, capacity=256)
        store = open_version_store(VersionStrategy.SEPARATED, pool)
        for i in range(64):
            store.append_version(1, sv(i, i + 1, payload=b"p" * 200))
        pool.stats.reset()
        store.read_at(1, 63)
        current_cost = pool.stats.hits + pool.stats.misses
        pool.stats.reset()
        store.read_at(1, 0)
        past_cost = pool.stats.hits + pool.stats.misses
        # Past access adds the version directory probe but does not walk.
        assert past_cost <= current_cost + 4
        disk.close()


class TestClusteredSignature:
    """The clustered store rewrites the whole record per append."""

    def test_append_cost_grows_with_history(self, tmp_path):
        disk = DiskManager(tmp_path / "cl.db")
        pool = BufferManager(disk, capacity=256)
        store = open_version_store(VersionStrategy.CLUSTERED, pool)
        payload = b"p" * 400
        for i in range(40):
            store.append_version(1, StoredVersion(i, i + 1, True, payload))
        pool.disk.stats.reset()
        store.append_version(1, StoredVersion(41, 42, True, payload))
        writes_long = pool.disk.stats.writes + pool.stats.hits
        store2 = open_version_store(VersionStrategy.CLUSTERED, pool)
        store2.append_version(2, StoredVersion(0, 1, True, payload))
        pool.disk.stats.reset()
        pool.stats.reset()
        store2.append_version(2, StoredVersion(1, 2, True, payload))
        writes_short = pool.disk.stats.writes + pool.stats.hits
        assert writes_long > writes_short
        disk.close()


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["append", "replace", "pop"]),
                          st.integers(1, 4),
                          st.integers(0, 30),
                          st.binary(max_size=50)),
                max_size=40),
       st.sampled_from(list(VersionStrategy)))
def test_random_operations_match_model(tmp_path_factory, operations,
                                       strategy):
    """Every strategy behaves like a dict of version lists."""
    directory = tmp_path_factory.mktemp("storeprop")
    disk = DiskManager(directory / "s.db")
    pool = BufferManager(disk, capacity=16)
    store = open_version_store(strategy, pool)
    model = {}
    counter = 0
    for kind, atom_id, seq_hint, payload in operations:
        counter += 1
        version = StoredVersion(counter, counter + 1, True, payload)
        if kind == "append":
            store.append_version(atom_id, version)
            model.setdefault(atom_id, []).append(version)
        elif kind == "replace" and model.get(atom_id):
            seq = seq_hint % len(model[atom_id])
            store.replace_version(atom_id, seq, version)
            model[atom_id][seq] = version
        elif kind == "pop" and model.get(atom_id):
            store.pop_version(atom_id)
            model[atom_id].pop()
            if not model[atom_id]:
                del model[atom_id]
    assert {atom_id: store.read_all(atom_id)
            for atom_id in store.atom_ids()} == model
    disk.close()

"""Streaming MQL execution: chunked results vs the eager oracle.

The load-bearing property is the differential one: for every temporal
clause, selection shape, and chunk size, flattening the stream's chunks
must reproduce the eager ``execute_query`` result exactly — same
entries, same order.  Around it: chunk-size arithmetic, lazy-evaluation
semantics (writers between chunks, early close), and argument
validation.
"""

from __future__ import annotations

import pytest

from repro.errors import EvaluationError
from repro.mql import StreamingResult, execute_query, execute_query_stream

QUERIES = [
    "SELECT ALL FROM Part VALID AT 5",
    "SELECT ALL FROM Part",  # defaults to VALID AT NOW
    "SELECT Part.name, Part.cost FROM Part VALID AT 5",
    "SELECT ALL FROM Part WHERE Part.cost > 40 VALID AT 5",
    "SELECT ALL FROM Part VALID DURING [0, 50)",
    "SELECT ALL FROM Part VALID HISTORY",
    "SELECT Part.name FROM Part WHERE Part.cost >= $c VALID HISTORY",
    "SELECT ALL FROM Part.contains.Component VALID AT 5",
    "SELECT ALL FROM Part.contains.Component "
    "WHERE Component.weight <= 3.0 VALID HISTORY",
]


@pytest.fixture
def stocked(db):
    with db.transaction() as txn:
        parts = []
        for index in range(23):
            parts.append(txn.insert(
                "Part", {"name": f"part{index}",
                         "cost": float(index * 10)}, valid_from=0))
        for index, part in enumerate(parts[:7]):
            comp = txn.insert("Component",
                              {"cname": f"c{index}",
                               "weight": float(index)}, valid_from=0)
            txn.link("contains", part, comp, valid_from=0)
    with db.transaction() as txn:
        for index, part in enumerate(parts[:9]):
            txn.update(part, {"cost": float(index * 10 + 5)},
                       valid_from=20)
    return db


def _key(entry):
    return (entry.root_id, entry.valid.start, entry.valid.end)


class TestDifferential:
    @pytest.mark.parametrize("text", QUERIES)
    @pytest.mark.parametrize("chunk_entries", [1, 3, 128])
    def test_stream_equals_eager(self, stocked, text, chunk_entries):
        params = {"c": 40.0} if "$c" in text else None
        eager = execute_query(stocked, text, params)
        stream = execute_query_stream(stocked, text, params,
                                      chunk_entries=chunk_entries)
        streamed = list(stream.entries())
        assert [_key(e) for e in streamed] == [_key(e) for e in eager.entries]
        for got, want in zip(streamed, eager.entries):
            if eager.projected:
                assert got.row == want.row
            else:
                assert got.molecule.root.version.values == want.molecule.root.version.values
        assert stream.projected == eager.projected

    def test_chunk_sizes_are_exact(self, stocked):
        stream = execute_query_stream(
            stocked, "SELECT ALL FROM Part VALID AT 5", chunk_entries=5)
        sizes = [len(chunk) for chunk in stream.chunks()]
        assert sizes == [5, 5, 5, 5, 3]

    def test_facade_on_database(self, stocked):
        stream = stocked.query_stream("SELECT ALL FROM Part VALID AT 5",
                                      chunk_entries=10)
        assert isinstance(stream, StreamingResult)
        assert sum(len(c) for c in stream.chunks()) == 23


class TestLaziness:
    def test_roots_fixed_at_stream_creation(self, stocked):
        """Atoms inserted after the stream opens never appear — the
        root candidate set is pinned eagerly."""
        stream = execute_query_stream(
            stocked, "SELECT ALL FROM Part VALID AT 5", chunk_entries=4)
        chunks = stream.chunks()
        first = next(chunks)
        with stocked.transaction() as txn:
            txn.insert("Part", {"name": "latecomer", "cost": 1.0},
                       valid_from=0)
        rest = [entry for chunk in chunks for entry in chunk]
        names = {e.molecule.root.version.values["name"]
                 for e in list(first) + rest}
        assert "latecomer" not in names
        assert len(names) == 23

    def test_writer_between_chunks_does_not_deadlock(self, stocked):
        """The read latch is released between chunks, so a writer can
        commit mid-stream (documented non-repeatable reads)."""
        stream = execute_query_stream(
            stocked, "SELECT ALL FROM Part VALID HISTORY",
            chunk_entries=3)
        chunks = stream.chunks()
        next(chunks)
        with stocked.transaction() as txn:
            txn.update(1, {"cost": 999.0}, valid_from=70)
        remaining = sum(len(c) for c in chunks)
        assert remaining > 0

    def test_close_mid_stream_releases_generator(self, stocked):
        stream = execute_query_stream(
            stocked, "SELECT ALL FROM Part VALID AT 5", chunk_entries=2)
        chunks = stream.chunks()
        next(chunks)
        stream.close()
        assert list(chunks) == []

    def test_context_manager_closes(self, stocked):
        with execute_query_stream(
                stocked, "SELECT ALL FROM Part VALID AT 5",
                chunk_entries=2) as stream:
            iterator = iter(stream)
            next(iterator)
        # After close only the chunk already in hand can still drain;
        # no further chunks are produced.
        assert len(list(iterator)) <= 1


class TestValidation:
    def test_chunk_entries_must_be_positive(self, stocked):
        with pytest.raises(EvaluationError):
            execute_query_stream(stocked, "SELECT ALL FROM Part",
                                 chunk_entries=0)

    def test_bad_query_fails_eagerly_not_mid_iteration(self, stocked):
        with pytest.raises(Exception):
            execute_query_stream(stocked, "SELECT ALL FROM Nonexistent")

    def test_explain_prefix_is_accepted_but_unprofiled(self, stocked):
        stream = execute_query_stream(
            stocked, "EXPLAIN ANALYZE SELECT ALL FROM Part VALID AT 5")
        assert sum(len(c) for c in stream.chunks()) == 23

"""Tests for the chronon timestamp domain."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidTimestampError
from repro.temporal import FOREVER, TMIN, format_timestamp, is_valid_timestamp, validate_timestamp
from repro.temporal.timestamp import MAX_CHRONON, MIN_CHRONON


class TestValidation:
    def test_zero_is_valid(self):
        assert is_valid_timestamp(0)

    def test_negative_chronons_are_valid(self):
        assert is_valid_timestamp(-12345)

    def test_sentinels_are_valid_by_default(self):
        assert is_valid_timestamp(TMIN)
        assert is_valid_timestamp(FOREVER)

    def test_tmin_rejectable(self):
        assert not is_valid_timestamp(TMIN, allow_tmin=False)
        assert is_valid_timestamp(MIN_CHRONON, allow_tmin=False)

    def test_forever_rejectable(self):
        assert not is_valid_timestamp(FOREVER, allow_forever=False)
        assert is_valid_timestamp(MAX_CHRONON, allow_forever=False)

    def test_bool_is_not_a_timestamp(self):
        assert not is_valid_timestamp(True)
        assert not is_valid_timestamp(False)

    def test_float_is_not_a_timestamp(self):
        assert not is_valid_timestamp(1.5)
        assert not is_valid_timestamp(1.0)

    def test_none_and_strings_rejected(self):
        assert not is_valid_timestamp(None)
        assert not is_valid_timestamp("5")

    def test_out_of_domain_rejected(self):
        assert not is_valid_timestamp(TMIN - 1)
        assert not is_valid_timestamp(FOREVER + 1)

    def test_validate_returns_value(self):
        assert validate_timestamp(42) == 42

    def test_validate_raises_with_role(self):
        with pytest.raises(InvalidTimestampError, match="valid_from"):
            validate_timestamp("x", role="valid_from")

    def test_validate_respects_bounds(self):
        with pytest.raises(InvalidTimestampError):
            validate_timestamp(FOREVER, allow_forever=False)


class TestFormatting:
    def test_sentinels_format_by_name(self):
        assert format_timestamp(TMIN) == "TMIN"
        assert format_timestamp(FOREVER) == "FOREVER"

    def test_numbers_format_plainly(self):
        assert format_timestamp(17) == "17"
        assert format_timestamp(-3) == "-3"


@given(st.integers(min_value=TMIN, max_value=FOREVER))
def test_every_domain_value_validates(value):
    assert validate_timestamp(value) == value


@given(st.integers())
def test_validation_matches_domain_bounds(value):
    assert is_valid_timestamp(value) == (TMIN <= value <= FOREVER)

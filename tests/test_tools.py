"""Tests for the verification and vacuum tools."""

import pytest

from repro.errors import TransactionStateError
from repro.tools import vacuum_superseded, verify_database
from repro.workloads import apply_to_database, cad_schema, generate_bom, small_spec


class TestVerify:
    def test_clean_database_passes(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "x"}, valid_from=0)
            hub = txn.insert("Component", {"cname": "h"}, valid_from=0)
            txn.link("contains", part, hub, valid_from=0)
            txn.update(part, {"cost": 1.0}, valid_from=10)
        report = verify_database(db)
        assert report.ok, report.problems
        assert report.atoms_checked == 2
        assert report.versions_checked >= 3
        assert "OK" in report.summary()

    def test_empty_database_passes(self, db):
        report = verify_database(db)
        assert report.ok
        assert report.atoms_checked == 0

    def test_workload_database_passes(self, tmp_path, strategy):
        from repro import DatabaseConfig, TemporalDatabase
        db = TemporalDatabase.create(str(tmp_path / "wl"), cad_schema(),
                                     DatabaseConfig(strategy=strategy))
        ops, _ = generate_bom(small_spec())
        apply_to_database(db, ops)
        report = verify_database(db)
        assert report.ok, report.problems[:5]
        db.close()

    def test_detects_type_index_mismatch(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "x"}, valid_from=0)
        type_id = db.schema.atom_type("Part").type_id
        db.indexes.unregister_atom(type_id, part)  # sabotage
        report = verify_database(db)
        assert not report.ok
        assert any("missing from the type index" in problem
                   for problem in report.problems)

    def test_detects_phantom_index_entry(self, db):
        type_id = db.schema.atom_type("Part").type_id
        db.indexes.register_atom(type_id, 999)  # sabotage
        report = verify_database(db)
        assert not report.ok
        assert any("not stored" in problem for problem in report.problems)

    def test_detects_asymmetric_reference(self, db):
        from repro.storage.strategies import StoredVersion
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "x"}, valid_from=0)
            hub = txn.insert("Component", {"cname": "h"}, valid_from=0)
            txn.link("contains", part, hub, valid_from=0)
        # Sabotage: strip the component's back reference at store level.
        seq, stored = db.store.read_current(hub)
        _, version = db.engine._decode(stored)
        bare = version.with_state(version.values, {})
        db.store.replace_version(hub, seq, db.engine._encode("Component",
                                                             bare))
        report = verify_database(db)
        assert not report.ok
        assert any("asymmetric link" in problem
                   for problem in report.problems)


class TestVacuum:
    def test_vacuum_removes_superseded(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "a", "cost": 1.0},
                              valid_from=0)
        for round_number in range(5):
            with db.transaction() as txn:
                txn.update(part, {"cost": float(round_number)},
                           valid_from=10 + round_number)
        before = len(db.history(part))
        cutoff = db._clock.now()
        report = vacuum_superseded(db, cutoff)
        assert report.versions_removed > 0
        after = db.history(part)
        assert len(after) < before
        assert all(version.live for version in after)
        # Current-belief queries are unaffected:
        assert db.version_at(part, 5).values["cost"] == 1.0
        assert db.version_at(part, 14).values["cost"] == 4.0

    def test_vacuum_cutoff_bounds_lost_knowledge(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "a", "cost": 1.0},
                              valid_from=0)
        insert_tt = db._clock.now() - 1
        with db.transaction() as txn:
            txn.correct(part, 0, 5, {"cost": 2.0})
        # Cutoff below the correction: the superseded belief survives.
        vacuum_superseded(db, insert_tt)
        assert db.version_at(part, 2, tt=insert_tt).values["cost"] == 1.0
        # Cutoff at the correction: the old belief is gone; AS OF before
        # the correction can no longer be answered, current belief can.
        vacuum_superseded(db, insert_tt + 1)
        assert db.version_at(part, 2, tt=insert_tt) is None
        assert db.version_at(part, 2).values["cost"] == 2.0

    def test_vacuum_drops_fully_dead_atoms(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "gone"}, valid_from=0)
        with db.transaction() as txn:
            txn.delete(part, valid_from=0)
        report = vacuum_superseded(db, db._clock.now())
        assert not db.engine.atom_exists(part) or all(
            v.live for v in db.history(part))
        assert db.atoms_of_type("Part") in ([], [part])
        verify_report = verify_database(db)
        assert verify_report.ok, verify_report.problems

    def test_vacuum_requires_quiescence(self, db):
        txn = db.begin()
        with pytest.raises(TransactionStateError):
            vacuum_superseded(db, 100)
        txn.abort()

    def test_vacuum_is_idempotent(self, db):
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "a"}, valid_from=0)
        with db.transaction() as txn:
            txn.update(part, {"cost": 2.0}, valid_from=5)
        cutoff = db._clock.now()
        first = vacuum_superseded(db, cutoff)
        second = vacuum_superseded(db, cutoff)
        assert first.versions_removed > 0
        assert second.versions_removed == 0

    def test_database_reopens_after_vacuum(self, tmp_path, cad_schema):
        from repro import TemporalDatabase
        path = str(tmp_path / "vac")
        db = TemporalDatabase.create(path, cad_schema)
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "a", "cost": 1.0},
                              valid_from=0)
        with db.transaction() as txn:
            txn.update(part, {"cost": 2.0}, valid_from=10)
        vacuum_superseded(db, db._clock.now())
        db.close()
        reopened = TemporalDatabase.open(path)
        assert reopened.version_at(part, 15).values["cost"] == 2.0
        assert verify_database(reopened).ok
        reopened.close()


class TestStatistics:
    def test_statistics_aggregate(self, db):
        from repro.tools import database_statistics
        with db.transaction() as txn:
            part = txn.insert("Part", {"name": "a"}, valid_from=0)
            txn.insert("Component", {"cname": "c"}, valid_from=0)
        with db.transaction() as txn:
            txn.update(part, {"cost": 1.0}, valid_from=10)
        stats = database_statistics(db)
        assert stats.total_atoms == 2
        assert stats.by_type["Part"].atoms == 1
        assert stats.by_type["Part"].versions == 3  # closed + 2 pieces
        assert stats.by_type["Part"].live_versions == 2
        assert stats.by_type["Part"].max_history == 3
        assert stats.by_type["Component"].mean_history == 1.0
        assert stats.total_pages > 0
        assert "type" in stats.index_names
        summary = stats.summary()
        assert "Part: 1 atoms" in summary

    def test_statistics_empty(self, db):
        from repro.tools import database_statistics
        stats = database_statistics(db)
        assert stats.total_atoms == 0
        assert stats.total_versions == 0

    def test_cli_stats(self, tmp_path, cad_schema, capsys):
        from repro import TemporalDatabase
        from repro.__main__ import main
        path = str(tmp_path / "statsdb")
        db = TemporalDatabase.create(path, cad_schema)
        with db.transaction() as txn:
            txn.insert("Part", {"name": "x"}, valid_from=0)
        db.close()
        assert main(["stats", path]) == 0
        assert "1 atoms" in capsys.readouterr().out

"""Tests for transaction lifecycle management."""

import pytest

from repro.errors import TransactionStateError
from repro.temporal import TransactionClock
from repro.txn.locks import LockManager, LockMode
from repro.txn.manager import TransactionManager, TxnState
from repro.txn.wal import LogRecordType, WriteAheadLog


@pytest.fixture
def manager(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.log", sync_on_commit=False)
    yield TransactionManager(wal, LockManager(timeout=1.0),
                             TransactionClock())
    wal.close()


class TestLifecycle:
    def test_begin_assigns_ids_and_tts(self, manager):
        t1 = manager.begin()
        t2 = manager.begin()
        assert t2.txn_id > t1.txn_id
        assert t2.tt > t1.tt
        assert t1.state is TxnState.ACTIVE

    def test_commit_transitions_state(self, manager):
        txn = manager.begin()
        txn.commit()
        assert txn.state is TxnState.COMMITTED
        assert not txn.is_active

    def test_abort_transitions_state(self, manager):
        txn = manager.begin()
        txn.abort()
        assert txn.state is TxnState.ABORTED

    def test_double_commit_rejected(self, manager):
        txn = manager.begin()
        txn.commit()
        with pytest.raises(TransactionStateError):
            txn.commit()

    def test_operations_after_commit_rejected(self, manager):
        txn = manager.begin()
        txn.commit()
        with pytest.raises(TransactionStateError):
            manager.log_operation(txn, {"op": "insert"})

    def test_active_transactions_tracking(self, manager):
        t1 = manager.begin()
        t2 = manager.begin()
        assert manager.active_transactions() == [t1.txn_id, t2.txn_id]
        t1.commit()
        assert manager.active_transactions() == [t2.txn_id]
        t2.abort()
        assert manager.active_transactions() == []


class TestLogging:
    def test_log_sequence(self, manager):
        txn = manager.begin()
        manager.log_operation(txn, {"op": "insert", "atom_id": 1})
        manager.log_operation(txn, {"op": "update", "atom_id": 1})
        txn.commit()
        types = [record.type for record in manager.wal.read_all()]
        assert types == [LogRecordType.BEGIN, LogRecordType.OPERATION,
                         LogRecordType.OPERATION, LogRecordType.COMMIT]

    def test_begin_record_carries_tt(self, manager):
        txn = manager.begin()
        txn.commit()
        begin = next(iter(manager.wal.read_all()))
        assert begin.payload == {"tt": txn.tt}

    def test_abort_logged(self, manager):
        txn = manager.begin()
        txn.abort()
        types = [record.type for record in manager.wal.read_all()]
        assert types[-1] == LogRecordType.ABORT

    def test_operation_counter(self, manager):
        txn = manager.begin()
        assert txn.operations_logged == 0
        manager.log_operation(txn, {"op": "x"})
        assert txn.operations_logged == 1
        txn.commit()


class TestUndo:
    def test_undo_actions_run_in_reverse_on_abort(self, manager):
        txn = manager.begin()
        trace = []
        txn.add_undo(lambda: trace.append("first"))
        txn.add_undo(lambda: trace.append("second"))
        txn.abort()
        assert trace == ["second", "first"]

    def test_undo_not_run_on_commit(self, manager):
        txn = manager.begin()
        trace = []
        txn.add_undo(lambda: trace.append("never"))
        txn.commit()
        assert trace == []

    def test_add_undo_after_end_rejected(self, manager):
        txn = manager.begin()
        txn.commit()
        with pytest.raises(TransactionStateError):
            txn.add_undo(lambda: None)


class TestLockIntegration:
    def test_locks_released_on_commit(self, manager):
        t1 = manager.begin()
        manager.locks.acquire(t1.txn_id, ("atom", 5), LockMode.EXCLUSIVE)
        t1.commit()
        assert manager.locks.locks_held(t1.txn_id) == set()

"""Tests for the Version value object."""

import pytest

from repro.core.version import IN, OUT, Version, ref_key, split_ref_key
from repro.temporal import FOREVER, Interval


def make(vt=(0, 10), tt=(0, FOREVER), values=None, refs=None):
    return Version(Interval(*vt), Interval(*tt), values or {}, refs or {})


class TestRefKeys:
    def test_ref_key_format(self):
        assert ref_key("contains", OUT) == "contains.out"
        assert ref_key("contains", IN) == "contains.in"

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError):
            ref_key("contains", "sideways")

    def test_split_round_trip(self):
        assert split_ref_key("contains.out") == ("contains", "out")
        assert split_ref_key("a.b.in") == ("a.b", "in")


class TestVersion:
    def test_live(self):
        assert make(tt=(0, FOREVER)).live
        assert not make(tt=(0, 5)).live

    def test_targets(self):
        version = make(refs={"contains.out": frozenset({1, 2})})
        assert version.targets("contains") == {1, 2}
        assert version.targets("contains", IN) == frozenset()

    def test_with_vt(self):
        version = make(values={"x": 1})
        moved = version.with_vt(Interval(5, 6))
        assert moved.vt == Interval(5, 6)
        assert moved.values == {"x": 1}
        assert version.vt == Interval(0, 10)  # original untouched

    def test_closed_at(self):
        version = make(tt=(3, FOREVER))
        closed = version.closed_at(9)
        assert closed.tt == Interval(3, 9)
        assert not closed.live

    def test_with_state(self):
        version = make()
        changed = version.with_state({"x": 2}, {"l.out": {7}})
        assert changed.values == {"x": 2}
        assert changed.refs == {"l.out": frozenset({7})}

    def test_same_state_ignores_times(self):
        a = make(vt=(0, 5), values={"x": 1})
        b = make(vt=(5, 9), tt=(3, 7), values={"x": 1})
        assert a.same_state_as(b)

    def test_same_state_ignores_empty_ref_sets(self):
        a = make(refs={"l.out": frozenset()})
        b = make(refs={})
        assert a.same_state_as(b)

    def test_different_values_not_same_state(self):
        assert not make(values={"x": 1}).same_state_as(make(values={"x": 2}))

    def test_different_refs_not_same_state(self):
        a = make(refs={"l.out": frozenset({1})})
        b = make(refs={"l.out": frozenset({2})})
        assert not a.same_state_as(b)

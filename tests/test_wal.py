"""Tests for the write-ahead log."""

import pytest

from repro.txn.wal import LogRecordType, WriteAheadLog


@pytest.fixture
def wal(tmp_path):
    log = WriteAheadLog(tmp_path / "wal.log", sync_on_commit=False)
    yield log
    log.close()


class TestAppendRead:
    def test_lsns_increase_from_one(self, wal):
        assert wal.append(LogRecordType.BEGIN, 1, {"tt": 0}) == 1
        assert wal.append(LogRecordType.COMMIT, 1) == 2

    def test_read_all_round_trip(self, wal):
        wal.append(LogRecordType.BEGIN, 1, {"tt": 5})
        wal.append(LogRecordType.OPERATION, 1, {"op": "insert", "x": [1, 2]})
        wal.append(LogRecordType.COMMIT, 1)
        records = list(wal.read_all())
        assert [r.type for r in records] == [LogRecordType.BEGIN,
                                             LogRecordType.OPERATION,
                                             LogRecordType.COMMIT]
        assert records[1].payload == {"op": "insert", "x": [1, 2]}
        assert all(r.txn_id == 1 for r in records)

    def test_read_after_lsn(self, wal):
        for i in range(5):
            wal.append(LogRecordType.OPERATION, 1, {"i": i})
        tail = list(wal.read_all(after_lsn=3))
        assert [r.payload["i"] for r in tail] == [3, 4]

    def test_unicode_payload(self, wal):
        wal.append(LogRecordType.OPERATION, 1, {"name": "déjà-vu ★"})
        (record,) = wal.read_all()
        assert record.payload["name"] == "déjà-vu ★"

    def test_empty_log(self, wal):
        assert list(wal.read_all()) == []
        assert wal.next_lsn == 1


class TestDurability:
    def test_lsn_continues_after_reopen(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, sync_on_commit=False) as wal:
            wal.append(LogRecordType.BEGIN, 1, {"tt": 0})
            wal.flush(sync=False)
        with WriteAheadLog(path, sync_on_commit=False) as wal:
            assert wal.next_lsn == 2
            assert wal.append(LogRecordType.COMMIT, 1) == 2

    def test_torn_tail_is_cut(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, sync_on_commit=False) as wal:
            wal.append(LogRecordType.BEGIN, 1, {"tt": 0})
            wal.append(LogRecordType.OPERATION, 1, {"op": "x"})
            wal.flush(sync=False)
        # Simulate a crash mid-append: truncate into the last record.
        raw = path.read_bytes()
        path.write_bytes(raw[:-5])
        with WriteAheadLog(path, sync_on_commit=False) as wal:
            records = list(wal.read_all())
            assert [r.type for r in records] == [LogRecordType.BEGIN]

    def test_corrupt_tail_is_cut(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, sync_on_commit=False) as wal:
            wal.append(LogRecordType.BEGIN, 1, {"tt": 0})
            wal.append(LogRecordType.COMMIT, 1)
            wal.flush(sync=False)
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0xFF  # flip a bit in the last record's payload
        path.write_bytes(bytes(raw))
        with WriteAheadLog(path, sync_on_commit=False) as wal:
            records = list(wal.read_all())
            assert [r.type for r in records] == [LogRecordType.BEGIN]

    def test_truncate(self, wal):
        wal.append(LogRecordType.BEGIN, 1, {"tt": 0})
        wal.truncate()
        assert list(wal.read_all()) == []
        assert wal.size_bytes() == 0

    def test_size_bytes_grows(self, wal):
        before = wal.size_bytes()
        wal.append(LogRecordType.OPERATION, 1, {"op": "payload"})
        assert wal.size_bytes() > before


class TestFlushOverrides:
    """``flush(sync=...)`` has three behaviours; each is observable via
    the ``wal.fsyncs`` counter."""

    def test_default_follows_nosync_config(self, wal):
        wal.append(LogRecordType.BEGIN, 1, {"tt": 0})
        before = wal.metrics.value("wal.fsyncs")
        wal.flush()  # sync=None: follow sync_on_commit=False
        assert wal.metrics.value("wal.fsyncs") == before

    def test_default_follows_sync_config(self, tmp_path):
        log = WriteAheadLog(tmp_path / "sync.log", sync_on_commit=True)
        try:
            log.append(LogRecordType.BEGIN, 1, {"tt": 0})
            before = log.metrics.value("wal.fsyncs")
            log.flush()  # sync=None: follow sync_on_commit=True
            assert log.metrics.value("wal.fsyncs") == before + 1
        finally:
            log.close()

    def test_sync_true_overrides_nosync_config(self, wal):
        wal.append(LogRecordType.BEGIN, 1, {"tt": 0})
        before = wal.metrics.value("wal.fsyncs")
        wal.flush(sync=True)
        assert wal.metrics.value("wal.fsyncs") == before + 1

    def test_sync_false_overrides_sync_config(self, tmp_path):
        log = WriteAheadLog(tmp_path / "sync.log", sync_on_commit=True)
        try:
            log.append(LogRecordType.BEGIN, 1, {"tt": 0})
            before = log.metrics.value("wal.fsyncs")
            log.flush(sync=False)
            assert log.metrics.value("wal.fsyncs") == before
        finally:
            log.close()


class TestSyncTo:
    def test_noop_without_sync_on_commit(self, wal):
        lsn = wal.append(LogRecordType.COMMIT, 1)
        wal.sync_to(lsn)
        assert wal.durable_lsn == 0
        assert wal.metrics.value("wal.fsyncs") == 0

    def test_single_committer_fsyncs_once(self, tmp_path):
        log = WriteAheadLog(tmp_path / "gc.log", sync_on_commit=True)
        try:
            log.append(LogRecordType.BEGIN, 1, {"tt": 0})
            lsn = log.append(LogRecordType.COMMIT, 1)
            before = log.metrics.value("wal.fsyncs")
            log.sync_to(lsn)
            assert log.durable_lsn == lsn
            assert log.metrics.value("wal.fsyncs") == before + 1
            assert log.metrics.value("wal.group_commits") == 1
            # Syncing an already-durable LSN is free.
            log.sync_to(lsn)
            assert log.metrics.value("wal.fsyncs") == before + 1
        finally:
            log.close()

    def test_leader_covers_later_appends(self, tmp_path):
        """The leader's fsync covers everything appended before it runs."""
        log = WriteAheadLog(tmp_path / "gc.log", sync_on_commit=True)
        try:
            first = log.append(LogRecordType.COMMIT, 1)
            later = log.append(LogRecordType.COMMIT, 2)
            log.sync_to(first)
            assert log.durable_lsn >= later  # one fsync, both durable
            before = log.metrics.value("wal.fsyncs")
            log.sync_to(later)  # already covered: no second fsync
            assert log.metrics.value("wal.fsyncs") == before
        finally:
            log.close()

    def test_per_commit_fsync_mode(self, tmp_path):
        log = WriteAheadLog(tmp_path / "pc.log", sync_on_commit=True,
                            group_commit=False)
        try:
            before = log.metrics.value("wal.fsyncs")
            for txn in range(3):
                lsn = log.append(LogRecordType.COMMIT, txn + 1)
                log.sync_to(lsn)
            assert log.metrics.value("wal.fsyncs") == before + 3
            assert log.durable_lsn == log.next_lsn - 1
            assert log.metrics.value("wal.group_commits") == 0
        finally:
            log.close()

    def test_truncate_marks_log_durable(self, wal):
        lsn = wal.append(LogRecordType.COMMIT, 1)
        wal.truncate()
        assert wal.durable_lsn == lsn

"""Tests for the write-ahead log."""

import pytest

from repro.errors import WALError
from repro.txn.wal import LogRecordType, WriteAheadLog


@pytest.fixture
def wal(tmp_path):
    log = WriteAheadLog(tmp_path / "wal.log", sync_on_commit=False)
    yield log
    log.close()


class TestAppendRead:
    def test_lsns_increase_from_one(self, wal):
        assert wal.append(LogRecordType.BEGIN, 1, {"tt": 0}) == 1
        assert wal.append(LogRecordType.COMMIT, 1) == 2

    def test_read_all_round_trip(self, wal):
        wal.append(LogRecordType.BEGIN, 1, {"tt": 5})
        wal.append(LogRecordType.OPERATION, 1, {"op": "insert", "x": [1, 2]})
        wal.append(LogRecordType.COMMIT, 1)
        records = list(wal.read_all())
        assert [r.type for r in records] == [LogRecordType.BEGIN,
                                             LogRecordType.OPERATION,
                                             LogRecordType.COMMIT]
        assert records[1].payload == {"op": "insert", "x": [1, 2]}
        assert all(r.txn_id == 1 for r in records)

    def test_read_after_lsn(self, wal):
        for i in range(5):
            wal.append(LogRecordType.OPERATION, 1, {"i": i})
        tail = list(wal.read_all(after_lsn=3))
        assert [r.payload["i"] for r in tail] == [3, 4]

    def test_unicode_payload(self, wal):
        wal.append(LogRecordType.OPERATION, 1, {"name": "déjà-vu ★"})
        (record,) = wal.read_all()
        assert record.payload["name"] == "déjà-vu ★"

    def test_empty_log(self, wal):
        assert list(wal.read_all()) == []
        assert wal.next_lsn == 1


class TestDurability:
    def test_lsn_continues_after_reopen(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, sync_on_commit=False) as wal:
            wal.append(LogRecordType.BEGIN, 1, {"tt": 0})
            wal.flush(sync=False)
        with WriteAheadLog(path, sync_on_commit=False) as wal:
            assert wal.next_lsn == 2
            assert wal.append(LogRecordType.COMMIT, 1) == 2

    def test_torn_tail_is_cut(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, sync_on_commit=False) as wal:
            wal.append(LogRecordType.BEGIN, 1, {"tt": 0})
            wal.append(LogRecordType.OPERATION, 1, {"op": "x"})
            wal.flush(sync=False)
        # Simulate a crash mid-append: truncate into the last record.
        raw = path.read_bytes()
        path.write_bytes(raw[:-5])
        with WriteAheadLog(path, sync_on_commit=False) as wal:
            records = list(wal.read_all())
            assert [r.type for r in records] == [LogRecordType.BEGIN]

    def test_corrupt_tail_is_cut(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, sync_on_commit=False) as wal:
            wal.append(LogRecordType.BEGIN, 1, {"tt": 0})
            wal.append(LogRecordType.COMMIT, 1)
            wal.flush(sync=False)
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0xFF  # flip a bit in the last record's payload
        path.write_bytes(bytes(raw))
        with WriteAheadLog(path, sync_on_commit=False) as wal:
            records = list(wal.read_all())
            assert [r.type for r in records] == [LogRecordType.BEGIN]

    def test_truncate(self, wal):
        wal.append(LogRecordType.BEGIN, 1, {"tt": 0})
        wal.truncate()
        assert list(wal.read_all()) == []
        assert wal.size_bytes() == 0

    def test_size_bytes_grows(self, wal):
        before = wal.size_bytes()
        wal.append(LogRecordType.OPERATION, 1, {"op": "payload"})
        assert wal.size_bytes() > before


class TestFlushOverrides:
    """``flush(sync=...)`` has three behaviours; each is observable via
    the ``wal.fsyncs`` counter."""

    def test_default_follows_nosync_config(self, wal):
        wal.append(LogRecordType.BEGIN, 1, {"tt": 0})
        before = wal.metrics.value("wal.fsyncs")
        wal.flush()  # sync=None: follow sync_on_commit=False
        assert wal.metrics.value("wal.fsyncs") == before

    def test_default_follows_sync_config(self, tmp_path):
        log = WriteAheadLog(tmp_path / "sync.log", sync_on_commit=True)
        try:
            log.append(LogRecordType.BEGIN, 1, {"tt": 0})
            before = log.metrics.value("wal.fsyncs")
            log.flush()  # sync=None: follow sync_on_commit=True
            assert log.metrics.value("wal.fsyncs") == before + 1
        finally:
            log.close()

    def test_sync_true_overrides_nosync_config(self, wal):
        wal.append(LogRecordType.BEGIN, 1, {"tt": 0})
        before = wal.metrics.value("wal.fsyncs")
        wal.flush(sync=True)
        assert wal.metrics.value("wal.fsyncs") == before + 1

    def test_sync_false_overrides_sync_config(self, tmp_path):
        log = WriteAheadLog(tmp_path / "sync.log", sync_on_commit=True)
        try:
            log.append(LogRecordType.BEGIN, 1, {"tt": 0})
            before = log.metrics.value("wal.fsyncs")
            log.flush(sync=False)
            assert log.metrics.value("wal.fsyncs") == before
        finally:
            log.close()


class TestSyncTo:
    def test_noop_without_sync_on_commit(self, wal):
        lsn = wal.append(LogRecordType.COMMIT, 1)
        wal.sync_to(lsn)
        assert wal.durable_lsn == 0
        assert wal.metrics.value("wal.fsyncs") == 0

    def test_single_committer_fsyncs_once(self, tmp_path):
        log = WriteAheadLog(tmp_path / "gc.log", sync_on_commit=True)
        try:
            log.append(LogRecordType.BEGIN, 1, {"tt": 0})
            lsn = log.append(LogRecordType.COMMIT, 1)
            before = log.metrics.value("wal.fsyncs")
            log.sync_to(lsn)
            assert log.durable_lsn == lsn
            assert log.metrics.value("wal.fsyncs") == before + 1
            assert log.metrics.value("wal.group_commits") == 1
            # Syncing an already-durable LSN is free.
            log.sync_to(lsn)
            assert log.metrics.value("wal.fsyncs") == before + 1
        finally:
            log.close()

    def test_leader_covers_later_appends(self, tmp_path):
        """The leader's fsync covers everything appended before it runs."""
        log = WriteAheadLog(tmp_path / "gc.log", sync_on_commit=True)
        try:
            first = log.append(LogRecordType.COMMIT, 1)
            later = log.append(LogRecordType.COMMIT, 2)
            log.sync_to(first)
            assert log.durable_lsn >= later  # one fsync, both durable
            before = log.metrics.value("wal.fsyncs")
            log.sync_to(later)  # already covered: no second fsync
            assert log.metrics.value("wal.fsyncs") == before
        finally:
            log.close()

    def test_per_commit_fsync_mode(self, tmp_path):
        log = WriteAheadLog(tmp_path / "pc.log", sync_on_commit=True,
                            group_commit=False)
        try:
            before = log.metrics.value("wal.fsyncs")
            for txn in range(3):
                lsn = log.append(LogRecordType.COMMIT, txn + 1)
                log.sync_to(lsn)
            assert log.metrics.value("wal.fsyncs") == before + 3
            assert log.durable_lsn == log.next_lsn - 1
            assert log.metrics.value("wal.group_commits") == 0
        finally:
            log.close()

    def test_truncate_marks_log_durable(self, wal):
        lsn = wal.append(LogRecordType.COMMIT, 1)
        wal.truncate()
        assert wal.durable_lsn == lsn


class TestReplicationSurface:
    """The WAL API the replication plane is built on: shippable heads,
    verbatim shipped appends, bounded range reads, and the retention
    guard."""

    def test_shippable_tracks_head_without_sync(self, wal):
        assert wal.shippable_lsn == 0
        wal.append(LogRecordType.BEGIN, 1, {"tt": 0})
        wal.append(LogRecordType.COMMIT, 1)
        assert wal.shippable_lsn == 2  # no durability floor to honor

    def test_shippable_is_durable_head_with_sync(self, tmp_path):
        with WriteAheadLog(tmp_path / "s.log", sync_on_commit=True) as log:
            log.append(LogRecordType.BEGIN, 1, {"tt": 0})
            lsn = log.append(LogRecordType.COMMIT, 1)
            assert log.shippable_lsn == 0  # appended but not yet forced
            log.sync_to(lsn)
            assert log.shippable_lsn == lsn

    def test_recovered_records_are_shippable_immediately(self, tmp_path):
        path = tmp_path / "r.log"
        with WriteAheadLog(path, sync_on_commit=True) as log:
            lsn = log.append(LogRecordType.COMMIT, 1)
            log.sync_to(lsn)
        with WriteAheadLog(path, sync_on_commit=True) as log:
            assert log.shippable_lsn == lsn

    def test_wait_for_shippable_wakes_on_commit(self, wal):
        import threading
        import time

        def commit_later():
            time.sleep(0.05)
            wal.append(LogRecordType.COMMIT, 1)

        thread = threading.Thread(target=commit_later)
        thread.start()
        head = wal.wait_for_shippable(1, timeout=5.0)
        thread.join()
        assert head >= 1

    def test_wait_for_shippable_times_out(self, wal):
        assert wal.wait_for_shippable(10, timeout=0.05) == 0

    def test_append_shipped_round_trip(self, tmp_path, wal):
        wal.append(LogRecordType.BEGIN, 7, {"tt": 3})
        wal.append(LogRecordType.COMMIT, 7)
        replica = WriteAheadLog(tmp_path / "replica.log",
                                sync_on_commit=False)
        try:
            for record in wal.read_all():
                assert replica.append_shipped(record.lsn,
                                              record.type.value,
                                              record.txn_id,
                                              record.payload)
            assert ([(r.lsn, r.type, r.txn_id, r.payload)
                     for r in replica.read_all()]
                    == [(r.lsn, r.type, r.txn_id, r.payload)
                        for r in wal.read_all()])
        finally:
            replica.close()

    def test_append_shipped_duplicate_is_ignored(self, wal):
        assert wal.append_shipped(1, LogRecordType.BEGIN.value, 1, {})
        assert wal.append_shipped(2, LogRecordType.COMMIT.value, 1, {})
        # A reconnecting replica may replay an overlapping range.
        assert wal.append_shipped(1, LogRecordType.BEGIN.value, 1, {}) \
            is False
        assert wal.next_lsn == 3
        assert len(list(wal.read_all())) == 2

    def test_append_shipped_gap_raises(self, wal):
        wal.append_shipped(1, LogRecordType.BEGIN.value, 1, {})
        with pytest.raises(WALError, match="stream gap"):
            wal.append_shipped(5, LogRecordType.COMMIT.value, 1, {})

    def test_append_shipped_adopts_position_on_empty_log(self, wal):
        # A freshly-truncated replica log resumes mid-stream: the first
        # shipped record defines the position.
        assert wal.append_shipped(41, LogRecordType.BEGIN.value, 9, {})
        assert wal.next_lsn == 42
        (record,) = wal.read_all()
        assert record.lsn == 41

    def test_read_records_from_bounds(self, wal):
        for i in range(5):
            wal.append(LogRecordType.OPERATION, 1, {"i": i})
        records = list(wal.read_records_from(2, upto_lsn=4))
        assert [r.lsn for r in records] == [2, 3, 4]

    def test_read_records_from_truncated_start_raises(self, wal):
        wal.append_shipped(10, LogRecordType.BEGIN.value, 1, {})
        with pytest.raises(WALError, match="truncated"):
            list(wal.read_records_from(5))

    def test_retention_guard_refuses_truncate(self, wal):
        wal.append(LogRecordType.BEGIN, 1, {"tt": 0})
        wal.append(LogRecordType.COMMIT, 1)
        wal.subscribe("r1", acked_lsn=1)
        assert wal.truncate() is False
        assert wal.metrics.gauge("wal.retention_held_bytes").value > 0
        assert wal.size_bytes() > 0  # the log survived

    def test_ack_to_head_releases_the_guard(self, wal):
        wal.append(LogRecordType.BEGIN, 1, {"tt": 0})
        head = wal.append(LogRecordType.COMMIT, 1)
        wal.subscribe("r1", acked_lsn=0)
        assert wal.truncate() is False
        wal.ack("r1", head)
        assert wal.truncate() is True
        assert wal.metrics.gauge("wal.retention_held_bytes").value == 0
        assert wal.size_bytes() == 0

    def test_release_drops_the_hold(self, wal):
        wal.append(LogRecordType.COMMIT, 1)
        wal.subscribe("r1", acked_lsn=0)
        assert wal.truncate() is False
        wal.release("r1")
        assert wal.truncate() is True

    def test_min_acked_is_slowest_subscriber(self, wal):
        assert wal.min_acked_lsn() is None
        wal.subscribe("fast", acked_lsn=9)
        wal.subscribe("slow", acked_lsn=2)
        assert wal.min_acked_lsn() == 2
        assert set(wal.subscribers()) == {"fast", "slow"}

    def test_acks_are_monotone(self, wal):
        wal.subscribe("r1", acked_lsn=5)
        wal.ack("r1", 3)  # a stale ack never regresses the floor
        assert wal.min_acked_lsn() == 5

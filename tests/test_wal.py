"""Tests for the write-ahead log."""

import pytest

from repro.txn.wal import LogRecordType, WriteAheadLog


@pytest.fixture
def wal(tmp_path):
    log = WriteAheadLog(tmp_path / "wal.log", sync_on_commit=False)
    yield log
    log.close()


class TestAppendRead:
    def test_lsns_increase_from_one(self, wal):
        assert wal.append(LogRecordType.BEGIN, 1, {"tt": 0}) == 1
        assert wal.append(LogRecordType.COMMIT, 1) == 2

    def test_read_all_round_trip(self, wal):
        wal.append(LogRecordType.BEGIN, 1, {"tt": 5})
        wal.append(LogRecordType.OPERATION, 1, {"op": "insert", "x": [1, 2]})
        wal.append(LogRecordType.COMMIT, 1)
        records = list(wal.read_all())
        assert [r.type for r in records] == [LogRecordType.BEGIN,
                                             LogRecordType.OPERATION,
                                             LogRecordType.COMMIT]
        assert records[1].payload == {"op": "insert", "x": [1, 2]}
        assert all(r.txn_id == 1 for r in records)

    def test_read_after_lsn(self, wal):
        for i in range(5):
            wal.append(LogRecordType.OPERATION, 1, {"i": i})
        tail = list(wal.read_all(after_lsn=3))
        assert [r.payload["i"] for r in tail] == [3, 4]

    def test_unicode_payload(self, wal):
        wal.append(LogRecordType.OPERATION, 1, {"name": "déjà-vu ★"})
        (record,) = wal.read_all()
        assert record.payload["name"] == "déjà-vu ★"

    def test_empty_log(self, wal):
        assert list(wal.read_all()) == []
        assert wal.next_lsn == 1


class TestDurability:
    def test_lsn_continues_after_reopen(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, sync_on_commit=False) as wal:
            wal.append(LogRecordType.BEGIN, 1, {"tt": 0})
            wal.flush(sync=False)
        with WriteAheadLog(path, sync_on_commit=False) as wal:
            assert wal.next_lsn == 2
            assert wal.append(LogRecordType.COMMIT, 1) == 2

    def test_torn_tail_is_cut(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, sync_on_commit=False) as wal:
            wal.append(LogRecordType.BEGIN, 1, {"tt": 0})
            wal.append(LogRecordType.OPERATION, 1, {"op": "x"})
            wal.flush(sync=False)
        # Simulate a crash mid-append: truncate into the last record.
        raw = path.read_bytes()
        path.write_bytes(raw[:-5])
        with WriteAheadLog(path, sync_on_commit=False) as wal:
            records = list(wal.read_all())
            assert [r.type for r in records] == [LogRecordType.BEGIN]

    def test_corrupt_tail_is_cut(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, sync_on_commit=False) as wal:
            wal.append(LogRecordType.BEGIN, 1, {"tt": 0})
            wal.append(LogRecordType.COMMIT, 1)
            wal.flush(sync=False)
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0xFF  # flip a bit in the last record's payload
        path.write_bytes(bytes(raw))
        with WriteAheadLog(path, sync_on_commit=False) as wal:
            records = list(wal.read_all())
            assert [r.type for r in records] == [LogRecordType.BEGIN]

    def test_truncate(self, wal):
        wal.append(LogRecordType.BEGIN, 1, {"tt": 0})
        wal.truncate()
        assert list(wal.read_all()) == []
        assert wal.size_bytes() == 0

    def test_size_bytes_grows(self, wal):
        before = wal.size_bytes()
        wal.append(LogRecordType.OPERATION, 1, {"op": "payload"})
        assert wal.size_bytes() > before

"""Tests for the workload generator and its replay adapters."""

import pytest

from repro.baselines import SnapshotDatabase, TupleTimestampDatabase
from repro.testing import ReferenceDatabase
from repro.workloads import (
    WorkloadSpec,
    apply_to_reference,
    apply_to_snapshot,
    apply_to_tuple_timestamp,
    buffer_sweep_spec,
    cad_schema,
    fanout_spec,
    generate_bom,
    history_depth_spec,
    small_spec,
)


class TestGenerator:
    def test_deterministic(self):
        a, _ = generate_bom(small_spec(seed=5))
        b, _ = generate_bom(small_spec(seed=5))
        assert a == b

    def test_seed_changes_output(self):
        a, _ = generate_bom(small_spec(seed=5))
        b, _ = generate_bom(small_spec(seed=6))
        assert a != b

    def test_group_sizes(self):
        spec = WorkloadSpec(parts=7, fanout=2, suppliers=3,
                            documents_per_part=2, versions_per_atom=1,
                            share_components=False)
        ops, groups = generate_bom(spec)
        assert len(groups["Part"]) == 7
        assert len(groups["Component"]) == 14
        assert len(groups["Supplier"]) == 3
        assert len(groups["Document"]) == 14

    def test_ops_are_time_ordered(self):
        ops, _ = generate_bom(small_spec())
        times = [op[-1] for op in ops]
        assert times == sorted(times)

    def test_versions_target_respected(self):
        spec = history_depth_spec(versions=5, parts=3)
        ops, groups = generate_bom(spec)
        ref = ReferenceDatabase(cad_schema())
        ids = apply_to_reference(ref, ops)
        part = ids[groups["Part"][0]]
        live = [v for v in ref.all_versions(part) if v.live]
        # versions_per_atom-1 churn rounds + insert = versions_per_atom
        # distinct live states (splits keep the count equal).
        assert len(live) == 5

    def test_fanout_spec_molecule_size(self):
        ops, groups = generate_bom(fanout_spec(fanout=6, parts=2))
        ref = ReferenceDatabase(cad_schema())
        ids = apply_to_reference(ref, ops)
        part = ids[groups["Part"][0]]
        molecule = ref.molecule_at(part, "Part.contains.Component", 0)
        assert molecule.atom_count() == 7  # part + 6 components

    def test_buffer_sweep_spec_is_bigger(self):
        big, _ = generate_bom(buffer_sweep_spec())
        small, _ = generate_bom(small_spec())
        assert len(big) > len(small)


class TestAdapters:
    def test_all_adapters_accept_the_same_ops(self, tmp_path):
        from repro import TemporalDatabase
        from repro.workloads import apply_to_database
        ops, groups = generate_bom(small_spec())
        db = TemporalDatabase.create(str(tmp_path / "adapters"),
                                     cad_schema())
        db_ids = apply_to_database(db, ops)
        ref_ids = apply_to_reference(ReferenceDatabase(cad_schema()), ops)
        snap_ids = apply_to_snapshot(SnapshotDatabase(cad_schema()), ops)
        flat_ids = apply_to_tuple_timestamp(
            TupleTimestampDatabase(cad_schema()), ops)
        assert (set(db_ids) == set(ref_ids) == set(snap_ids)
                == set(flat_ids))
        db.close()

    def test_unknown_op_rejected(self):
        ref = ReferenceDatabase(cad_schema())
        with pytest.raises(ValueError):
            apply_to_reference(ref, [("explode", 1)])

    def test_database_adapter_batches_transactions(self, tmp_path):
        from repro import TemporalDatabase
        from repro.workloads import apply_to_database
        ops, _ = generate_bom(small_spec())
        db = TemporalDatabase.create(str(tmp_path / "batches"),
                                     cad_schema())
        apply_to_database(db, ops, ops_per_txn=10)
        assert db._txn_manager.active_transactions() == []
        db.close()
